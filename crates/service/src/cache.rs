//! A bounded LRU cache of evaluate results.
//!
//! The cache key is exact, not heuristic: the graph's structure fingerprint
//! ([`kperiodic::structure_fingerprint`], which covers tasks, durations,
//! buffer endpoints and rates), the full marking vector (the one input the
//! fingerprint deliberately excludes) and a seed derived from the daemon's
//! analysis options. Any structural change — a task added, a rate edited, a
//! duration tweaked — changes the fingerprint and therefore misses: a cached
//! result can never outlive a structure change (asserted in the crate's
//! test-suite). Collisions of the 64-bit fingerprint itself are the same
//! astronomically-unlikely event the session pool already tolerates.

use csdf::CsdfGraph;
use kperiodic::{KIterOptions, KIterResult};

/// The exact identity of an evaluate request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    fingerprint: u64,
    markings: Vec<u64>,
    options_seed: u64,
}

impl CacheKey {
    /// Builds the key for evaluating `graph` under `options`.
    pub fn new(graph: &CsdfGraph, options: &KIterOptions) -> CacheKey {
        CacheKey {
            fingerprint: kperiodic::structure_fingerprint(graph),
            markings: graph
                .buffers()
                .map(|(_, buffer)| buffer.initial_tokens())
                .collect(),
            options_seed: options_seed(options),
        }
    }
}

/// FNV-1a over the debug rendering of the options: every field that changes
/// evaluation semantics shows up in the derived `Debug` output, so two
/// option sets hash alike only when they evaluate alike.
fn options_seed(options: &KIterOptions) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{options:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hit/miss counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached result.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries evicted over capacity.
    pub evicted: usize,
    /// Inserts refused because the key exceeded the entry-size limit
    /// ([`ResultCache::with_entry_limit`]).
    pub rejected: usize,
}

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    result: KIterResult,
    /// Monotonic last-use stamp; the smallest stamp is evicted first.
    stamp: u64,
}

/// A bounded least-recently-used map from [`CacheKey`] to [`KIterResult`].
///
/// Linear scan on lookup: the cache holds at most a few hundred entries and
/// sits behind a mutex next to evaluations that are orders of magnitude more
/// expensive, so simplicity wins over asymptotics.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    /// Largest marking vector an inserted key may carry; larger keys are
    /// refused and counted in [`CacheStats::rejected`].
    max_markings: usize,
    entries: Vec<Entry>,
    next_stamp: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates a cache keeping at most `capacity` results (`0` is `1`),
    /// with no entry-size limit.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            max_markings: usize::MAX,
            entries: Vec::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Caps the size of an insertable key at `max_markings` marking entries
    /// (one per buffer of the evaluated graph); oversized inserts are
    /// refused and counted in [`CacheStats::rejected`] instead of letting a
    /// handful of giant graphs dominate the cache's memory.
    #[must_use]
    pub fn with_entry_limit(mut self, max_markings: usize) -> ResultCache {
        self.max_markings = max_markings;
        self
    }

    /// Looks a key up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<KIterResult> {
        let found = self.entries.iter_mut().find(|entry| entry.key == *key);
        match found {
            Some(entry) => {
                entry.stamp = self.next_stamp;
                self.next_stamp += 1;
                self.stats.hits += 1;
                Some(entry.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting the least recently used entry over
    /// capacity. An existing entry for the key is replaced.
    ///
    /// # Panics
    ///
    /// Panics only if the eviction invariant breaks (an over-capacity cache
    /// with no entry to evict).
    pub fn insert(&mut self, key: CacheKey, result: KIterResult) {
        if key.markings.len() > self.max_markings {
            self.stats.rejected += 1;
            return;
        }
        if let Some(entry) = self.entries.iter_mut().find(|entry| entry.key == key) {
            entry.result = result;
            entry.stamp = self.next_stamp;
            self.next_stamp += 1;
            return;
        }
        self.entries.push(Entry {
            key,
            result,
            stamp: self.next_stamp,
        });
        self.next_stamp += 1;
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(index, _)| index)
                .expect("over-capacity cache is non-empty");
            self.entries.swap_remove(oldest);
            self.stats.evicted += 1;
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Drops every cached result, keeping the counters. Used by the daemon's
    /// poison recovery: a cache whose lock was poisoned mid-insert may hold a
    /// half-updated recency order, so it restarts empty rather than serve a
    /// result written by a panicking worker.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;
    use kperiodic::optimal_throughput;

    fn ring(duration: u64, tokens: u64) -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", duration);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, tokens);
        b.build().unwrap()
    }

    #[test]
    fn hits_require_identical_structure_markings_and_options() {
        let options = KIterOptions::default();
        let mut cache = ResultCache::new(8);
        let graph = ring(2, 3);
        let result = optimal_throughput(&graph).unwrap();
        cache.insert(CacheKey::new(&graph, &options), result.clone());

        assert_eq!(cache.get(&CacheKey::new(&graph, &options)), Some(result));
        // A marking change misses.
        assert_eq!(cache.get(&CacheKey::new(&ring(2, 4), &options)), None);
        // A structure change (duration) misses: the cached result did not
        // outlive the change.
        assert_eq!(cache.get(&CacheKey::new(&ring(3, 3), &options)), None);
        // An options change misses.
        let record = KIterOptions {
            record_history: true,
            ..KIterOptions::default()
        };
        assert_eq!(cache.get(&CacheKey::new(&graph, &record)), None);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn entry_limit_rejects_oversized_keys_and_clear_keeps_counters() {
        let options = KIterOptions::default();
        // The ring has two buffers; a one-marking limit refuses its key.
        let mut cache = ResultCache::new(8).with_entry_limit(1);
        let graph = ring(2, 3);
        let result = optimal_throughput(&graph).unwrap();
        cache.insert(CacheKey::new(&graph, &options), result.clone());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected, 1);

        let mut cache = ResultCache::new(8).with_entry_limit(2);
        cache.insert(CacheKey::new(&graph, &options), result);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&CacheKey::new(&graph, &options)).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1, "counters survive a clear");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let options = KIterOptions::default();
        let mut cache = ResultCache::new(2);
        let result = optimal_throughput(&ring(1, 1)).unwrap();
        let keys: Vec<CacheKey> = (1..=3u64)
            .map(|tokens| CacheKey::new(&ring(1, tokens), &options))
            .collect();
        cache.insert(keys[0].clone(), result.clone());
        cache.insert(keys[1].clone(), result.clone());
        // Refresh key 0, then overflow: key 1 is the LRU and must go.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2].clone(), result.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }
}
