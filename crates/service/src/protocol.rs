//! The request/response protocol of the analysis service.
//!
//! One request is one line of JSON; the matching response is one line of
//! JSON echoing the request's `id`. Requests carry their graph inline as a
//! string in one of the workspace's two serialisation formats, so the
//! protocol needs no out-of-band state:
//!
//! ```json
//! {"id":1,"type":"evaluate","graph":{"format":"sdf3","source":"<sdf3 ...>"}}
//! {"id":2,"type":"sweep","graph":{...},"slacks":[1,2,4]}
//! {"id":3,"type":"min_storage","graph":{...},"target":"2/7","max_slack":64}
//! {"id":4,"type":"scenario_set","graph":{...},"scenarios":[
//!     {"name":"tight","markings":[[3,1]]}]}
//! {"id":5,"type":"lint","graph":{...}}
//! {"id":6,"type":"verify","graph":{...},"max_expansion":10000}
//! ```
//!
//! Graph `format` is `"sdf3"` (the SDF3 XML wire format, see
//! [`csdf::text::write_sdf3_xml`]) or `"text"` (the line format of
//! [`csdf::text::parse`]). SDF3 `bufferSize` channel annotations are
//! honoured: the graph is evaluated with those channels bounded to the
//! annotated capacities (see [`GraphSpec::load`]).
//!
//! Throughputs cross the wire as exact strings — `"num/den"`, `"unbounded"`
//! or `"deadlock"` — never floats, so responses can be compared bit-for-bit
//! against direct library calls.

use csdf::transform::{bound_buffers, BufferCapacity};
use csdf::{BufferId, CsdfGraph, Rational, Throughput};

use crate::json::Json;

/// The serialisation format of an inline graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// SDF3 XML ([`csdf::text::parse_sdf3_xml_import`]).
    Sdf3,
    /// The workspace line format ([`csdf::text::parse`]).
    Text,
}

/// A graph shipped inline with a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// How `source` is encoded.
    pub format: GraphFormat,
    /// The serialised graph.
    pub source: String,
}

impl GraphSpec {
    /// Parses the inline source into the graph the request is about. SDF3
    /// `bufferSize` annotations are applied on the spot: the annotated
    /// channels are bounded to their capacities
    /// ([`csdf::transform::bound_buffers_tracked`]), so the returned graph
    /// is exactly what a direct library call on the bounded design would
    /// analyse.
    ///
    /// # Errors
    ///
    /// The rendered parse/model error.
    pub fn load(&self) -> Result<CsdfGraph, String> {
        match self.format {
            GraphFormat::Text => csdf::text::parse(&self.source).map_err(|error| error.to_string()),
            GraphFormat::Sdf3 => {
                let import = csdf::text::parse_sdf3_xml_import(&self.source)
                    .map_err(|error| error.to_string())?;
                if import.buffer_capacities.is_empty() {
                    return Ok(import.graph);
                }
                let assignments: Vec<BufferCapacity> = import
                    .buffer_capacities
                    .iter()
                    .map(|&(buffer, capacity)| BufferCapacity { buffer, capacity })
                    .collect();
                bound_buffers(&import.graph, &assignments).map_err(|error| error.to_string())
            }
        }
    }

    fn from_json(value: &Json) -> Result<GraphSpec, String> {
        let format = match value.get("format").and_then(Json::as_str) {
            Some("sdf3") => GraphFormat::Sdf3,
            Some("text") => GraphFormat::Text,
            Some(other) => return Err(format!("unknown graph format `{other}`")),
            None => return Err("`graph.format` must be \"sdf3\" or \"text\"".to_string()),
        };
        let source = value
            .get("source")
            .and_then(Json::as_str)
            .ok_or("`graph.source` must be a string")?
            .to_string();
        Ok(GraphSpec { format, source })
    }
}

/// One named marking-override scenario of a `scenario_set` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario name, echoed in the response.
    pub name: String,
    /// `(buffer id, initial tokens)` overrides.
    pub markings: Vec<(BufferId, u64)>,
}

/// The request types the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Optimal throughput of the graph (K-Iter).
    Evaluate {
        /// The graph to evaluate.
        graph: GraphSpec,
    },
    /// A uniform-slack Pareto sweep ([`csdf_explore::ParetoSweep`]).
    Sweep {
        /// The graph to bound and sweep.
        graph: GraphSpec,
        /// The slack values to evaluate, in response order.
        slacks: Vec<u64>,
    },
    /// Smallest uniform slack reaching a target throughput
    /// ([`csdf_explore::min_storage_for_throughput_on`]).
    MinStorage {
        /// The graph to bound.
        graph: GraphSpec,
        /// The throughput to reach.
        target: Throughput,
        /// Largest slack to consider.
        max_slack: u64,
    },
    /// Marking scenarios over one base graph
    /// ([`csdf_explore::ScenarioSet`]).
    ScenarioSet {
        /// The base graph.
        graph: GraphSpec,
        /// The scenarios, in response order.
        scenarios: Vec<ScenarioSpec>,
    },
    /// Static analysis only ([`csdf_lint::analyze_with_sources`]): structured
    /// diagnostics plus the pre-solve throughput bounds, no solver run.
    /// Unparseable graphs are reported as an `L000` diagnostic, not a
    /// protocol error.
    Lint {
        /// The graph to lint.
        graph: GraphSpec,
    },
    /// Cross-check the analysis stack on one graph: lint, then K-Iter, then
    /// (on small graphs) the HSDF-expansion baseline, and compare all
    /// verdicts.
    Verify {
        /// The graph to verify.
        graph: GraphSpec,
        /// Largest HSDF expansion (in phase-firing copies, `Σ q_t·φ_t`) the
        /// baseline cross-check may build; bigger graphs skip the baseline.
        max_expansion: u64,
    },
}

impl RequestBody {
    /// The `type` string of this request.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Evaluate { .. } => "evaluate",
            RequestBody::Sweep { .. } => "sweep",
            RequestBody::MinStorage { .. } => "min_storage",
            RequestBody::ScenarioSet { .. } => "scenario_set",
            RequestBody::Lint { .. } => "lint",
            RequestBody::Verify { .. } => "verify",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlation id, echoed verbatim in the response.
    pub id: Option<i128>,
    /// Per-request deadline in milliseconds: the daemon cancels the
    /// evaluation cooperatively once this budget elapses and answers with a
    /// `deadline_exceeded` error. `None` falls back to the daemon's default
    /// deadline; `0` cancels immediately (useful as an admission probe).
    pub deadline_ms: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message (the daemon wraps it in an error response). When
/// the line carries a readable `id` despite the error, it is returned too so
/// the error response can still be correlated.
pub fn parse_request(line: &str) -> Result<Request, (Option<i128>, String)> {
    let value = Json::parse(line).map_err(|error| (None, error))?;
    let id = value.get("id").and_then(Json::as_i128);
    let fail = |message: String| (id, message);
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(entry) => Some(
            entry
                .as_u64()
                .ok_or_else(|| fail("`deadline_ms` must be a non-negative integer".to_string()))?,
        ),
    };
    let graph = || -> Result<GraphSpec, (Option<i128>, String)> {
        let spec = value
            .get("graph")
            .ok_or_else(|| fail("missing `graph`".to_string()))?;
        GraphSpec::from_json(spec).map_err(fail)
    };
    let body = match value.get("type").and_then(Json::as_str) {
        Some("evaluate") => RequestBody::Evaluate { graph: graph()? },
        Some("sweep") => {
            let slacks = value
                .get("slacks")
                .and_then(Json::as_array)
                .ok_or_else(|| fail("`slacks` must be an array of integers".to_string()))?
                .iter()
                .map(super::json::Json::as_u64)
                .collect::<Option<Vec<u64>>>()
                .ok_or_else(|| {
                    fail("`slacks` entries must be non-negative integers".to_string())
                })?;
            if slacks.is_empty() {
                return Err(fail("`slacks` must not be empty".to_string()));
            }
            RequestBody::Sweep {
                graph: graph()?,
                slacks,
            }
        }
        Some("min_storage") => {
            let target = value
                .get("target")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("`target` must be a throughput string".to_string()))?;
            let target = parse_throughput(target).map_err(fail)?;
            let max_slack = match value.get("max_slack") {
                None => 64,
                Some(entry) => entry.as_u64().ok_or_else(|| {
                    fail("`max_slack` must be a non-negative integer".to_string())
                })?,
            };
            RequestBody::MinStorage {
                graph: graph()?,
                target,
                max_slack,
            }
        }
        Some("scenario_set") => {
            let scenarios = value
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or_else(|| fail("`scenarios` must be an array".to_string()))?
                .iter()
                .map(parse_scenario)
                .collect::<Result<Vec<ScenarioSpec>, String>>()
                .map_err(fail)?;
            RequestBody::ScenarioSet {
                graph: graph()?,
                scenarios,
            }
        }
        Some("lint") => RequestBody::Lint { graph: graph()? },
        Some("verify") => {
            let max_expansion = match value.get("max_expansion") {
                None => 10_000,
                Some(entry) => entry.as_u64().ok_or_else(|| {
                    fail("`max_expansion` must be a non-negative integer".to_string())
                })?,
            };
            RequestBody::Verify {
                graph: graph()?,
                max_expansion,
            }
        }
        Some(other) => return Err(fail(format!("unknown request type `{other}`"))),
        None => return Err(fail("missing `type`".to_string())),
    };
    Ok(Request {
        id,
        deadline_ms,
        body,
    })
}

fn parse_scenario(value: &Json) -> Result<ScenarioSpec, String> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or("scenario `name` must be a string")?
        .to_string();
    let markings = value
        .get("markings")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|pair| {
            let pair = pair.as_array().filter(|pair| pair.len() == 2);
            let buffer = pair.and_then(|p| p[0].as_u64());
            let tokens = pair.and_then(|p| p[1].as_u64());
            match (buffer, tokens) {
                (Some(buffer), Some(tokens)) => Ok((BufferId::new(buffer as usize), tokens)),
                _ => Err(format!(
                    "scenario `{name}` markings must be [buffer, tokens] integer pairs"
                )),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ScenarioSpec { name, markings })
}

/// Renders a throughput as its exact wire string: `"num/den"` (always with
/// the denominator, even when 1), `"unbounded"` or `"deadlock"`.
pub fn throughput_to_string(value: Throughput) -> String {
    match value {
        Throughput::Finite(rational) => format!("{}/{}", rational.numer(), rational.denom()),
        Throughput::Unbounded => "unbounded".to_string(),
        Throughput::Deadlocked => "deadlock".to_string(),
    }
}

/// Parses the wire form accepted for throughput targets: `"num/den"`, a
/// plain integer string, `"unbounded"` or `"deadlock"`.
///
/// # Errors
///
/// A human-readable message for anything else (including zero denominators).
pub fn parse_throughput(text: &str) -> Result<Throughput, String> {
    match text.trim() {
        "unbounded" => Ok(Throughput::Unbounded),
        "deadlock" => Ok(Throughput::Deadlocked),
        trimmed => {
            let (numer, denom) = match trimmed.split_once('/') {
                Some((numer, denom)) => (
                    numer
                        .trim()
                        .parse::<i128>()
                        .map_err(|_| format!("invalid throughput numerator in `{trimmed}`"))?,
                    denom
                        .trim()
                        .parse::<i128>()
                        .map_err(|_| format!("invalid throughput denominator in `{trimmed}`"))?,
                ),
                None => (
                    trimmed
                        .parse::<i128>()
                        .map_err(|_| format!("invalid throughput `{trimmed}`"))?,
                    1,
                ),
            };
            let rational = Rational::new(numer, denom)
                .map_err(|error| format!("invalid throughput `{trimmed}`: {error}"))?;
            Ok(Throughput::Finite(rational))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_graph() -> String {
        "graph g\ntask a durations=1\ntask b durations=2\nbuffer a -> b prod=1 cons=1 tokens=0\nbuffer b -> a prod=1 cons=1 tokens=2\n".to_string()
    }

    fn graph_json(source: &str) -> String {
        Json::Object(vec![
            ("format".to_string(), Json::Str("text".to_string())),
            ("source".to_string(), Json::Str(source.to_string())),
        ])
        .to_string()
    }

    #[test]
    fn parses_all_request_types() {
        let graph = graph_json(&text_graph());
        let evaluate =
            parse_request(&format!(r#"{{"id":1,"type":"evaluate","graph":{graph}}}"#)).unwrap();
        assert_eq!(evaluate.id, Some(1));
        assert_eq!(evaluate.body.kind(), "evaluate");
        assert_eq!(evaluate.deadline_ms, None);

        let bounded = parse_request(&format!(
            r#"{{"id":1,"type":"evaluate","graph":{graph},"deadline_ms":250}}"#
        ))
        .unwrap();
        assert_eq!(bounded.deadline_ms, Some(250));
        let (_, message) = parse_request(&format!(
            r#"{{"id":1,"type":"evaluate","graph":{graph},"deadline_ms":"soon"}}"#
        ))
        .unwrap_err();
        assert!(message.contains("deadline_ms"));

        let sweep = parse_request(&format!(
            r#"{{"id":2,"type":"sweep","graph":{graph},"slacks":[1,2,4]}}"#
        ))
        .unwrap();
        match sweep.body {
            RequestBody::Sweep { slacks, .. } => assert_eq!(slacks, vec![1, 2, 4]),
            other => panic!("unexpected {other:?}"),
        }

        let storage = parse_request(&format!(
            r#"{{"id":3,"type":"min_storage","graph":{graph},"target":"1/4"}}"#
        ))
        .unwrap();
        match storage.body {
            RequestBody::MinStorage {
                target, max_slack, ..
            } => {
                assert_eq!(target, Throughput::Finite(Rational::new(1, 4).unwrap()));
                assert_eq!(max_slack, 64);
            }
            other => panic!("unexpected {other:?}"),
        }

        let scenarios = parse_request(&format!(
            r#"{{"id":4,"type":"scenario_set","graph":{graph},"scenarios":[{{"name":"s","markings":[[1,5]]}}]}}"#
        ))
        .unwrap();
        match scenarios.body {
            RequestBody::ScenarioSet { scenarios, .. } => {
                assert_eq!(scenarios.len(), 1);
                assert_eq!(scenarios[0].markings, vec![(BufferId::new(1), 5)]);
            }
            other => panic!("unexpected {other:?}"),
        }

        let lint = parse_request(&format!(r#"{{"id":5,"type":"lint","graph":{graph}}}"#)).unwrap();
        assert_eq!(lint.body.kind(), "lint");

        let verify =
            parse_request(&format!(r#"{{"id":6,"type":"verify","graph":{graph}}}"#)).unwrap();
        match verify.body {
            RequestBody::Verify { max_expansion, .. } => assert_eq!(max_expansion, 10_000),
            other => panic!("unexpected {other:?}"),
        }
        let verify = parse_request(&format!(
            r#"{{"id":7,"type":"verify","graph":{graph},"max_expansion":32}}"#
        ))
        .unwrap();
        match verify.body {
            RequestBody::Verify { max_expansion, .. } => assert_eq!(max_expansion, 32),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn graphs_load_from_both_formats() {
        let spec = GraphSpec {
            format: GraphFormat::Text,
            source: text_graph(),
        };
        let graph = spec.load().unwrap();
        assert_eq!(graph.task_count(), 2);

        let sdf3 = GraphSpec {
            format: GraphFormat::Sdf3,
            source: csdf::text::write_sdf3_xml(&graph),
        };
        assert_eq!(sdf3.load().unwrap(), graph);
    }

    #[test]
    fn sdf3_buffer_sizes_bound_the_loaded_graph() {
        let base = GraphSpec {
            format: GraphFormat::Text,
            source: text_graph(),
        }
        .load()
        .unwrap();
        let annotated = csdf::text::write_sdf3_xml_with_capacities(&base, &[(BufferId::new(0), 3)]);
        let loaded = GraphSpec {
            format: GraphFormat::Sdf3,
            source: annotated,
        }
        .load()
        .unwrap();
        // One reverse channel was added for the annotated buffer.
        assert_eq!(loaded.buffer_count(), base.buffer_count() + 1);
    }

    #[test]
    fn errors_keep_the_request_id() {
        let (id, message) = parse_request(r#"{"id":9,"type":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(9));
        assert!(message.contains("unknown request type"));
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn throughput_strings_round_trip() {
        for text in ["3/4", "unbounded", "deadlock", "5/1"] {
            let value = parse_throughput(text).unwrap();
            assert_eq!(throughput_to_string(value), text);
        }
        assert_eq!(
            parse_throughput("7").unwrap(),
            Throughput::Finite(Rational::from_integer(7))
        );
        assert!(parse_throughput("1/0").is_err());
        assert!(parse_throughput("fast").is_err());
    }
}
