//! End-to-end tests of the daemon: every request type over every transport,
//! bit-identity against direct library calls, and cache/pool interaction
//! under concurrency and structure changes.

use std::io::{BufRead, BufReader, Write};

use csdf::{CsdfGraph, CsdfGraphBuilder};
use csdf_service::{throughput_to_string, Daemon, Json, ServiceConfig};

/// A three-task ring whose feedback marking (and hence throughput) is
/// `tokens`-dependent while the structure fingerprint is not.
fn ring(tokens: u64) -> CsdfGraph {
    let mut b = CsdfGraphBuilder::new();
    let x = b.add_sdf_task("x", 2);
    let y = b.add_task("y", vec![1, 3]);
    let z = b.add_sdf_task("z", 1);
    b.add_buffer(x, y, vec![2], vec![1, 1], 0);
    b.add_buffer(y, z, vec![1, 1], vec![2], 0);
    b.add_sdf_buffer(z, x, 1, 1, tokens);
    b.build().unwrap()
}

/// The same ring with a serialising self-loop on every task. Full
/// serialisation is what lets lint claim cycle/workload upper bounds that
/// the solver's event-graph model provably respects, so `verify` reaches an
/// `agree` verdict instead of surfacing the auto-concurrency divergence.
fn serialized_ring(tokens: u64) -> CsdfGraph {
    let mut b = CsdfGraphBuilder::new();
    let x = b.add_sdf_task("x", 2);
    let y = b.add_task("y", vec![1, 3]);
    let z = b.add_sdf_task("z", 1);
    b.add_buffer(x, y, vec![2], vec![1, 1], 0);
    b.add_buffer(y, z, vec![1, 1], vec![2], 0);
    b.add_sdf_buffer(z, x, 1, 1, tokens);
    for task in [x, y, z] {
        b.add_serializing_self_loop(task);
    }
    b.build().unwrap()
}

fn evaluate_request(id: usize, graph: &CsdfGraph) -> String {
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(graph))),
    ]);
    format!(r#"{{"id":{id},"type":"evaluate","graph":{spec}}}"#)
}

fn field<'a>(response: &'a Json, name: &str) -> &'a Json {
    response.get(name).unwrap_or(&Json::Null)
}

#[test]
fn batch_serves_all_request_types_in_request_order() {
    let graph = ring(2);
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(&graph))),
    ]);
    let batch = [
        format!(r#"{{"id":10,"type":"evaluate","graph":{spec}}}"#),
        format!(r#"{{"id":11,"type":"sweep","graph":{spec},"slacks":[1,2,4]}}"#),
        format!(r#"{{"id":12,"type":"min_storage","graph":{spec},"target":"1/8","max_slack":16}}"#),
        format!(
            r#"{{"id":13,"type":"scenario_set","graph":{spec},"scenarios":[{{"name":"tight","markings":[[2,1]]}},{{"name":"base","markings":[]}}]}}"#
        ),
        r#"{"id":14,"type":"evaluate"}"#.to_string(),
    ]
    .join("\n");

    let daemon = Daemon::new(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let responses = daemon.run_batch(&batch);
    assert_eq!(responses.len(), 5);
    let parsed: Vec<Json> = responses
        .iter()
        .map(|line| Json::parse(line).unwrap())
        .collect();
    for (index, response) in parsed.iter().enumerate() {
        assert_eq!(field(response, "id").as_i128(), Some(10 + index as i128));
    }

    let reference = kperiodic::optimal_throughput(&graph).unwrap();
    assert_eq!(field(&parsed[0], "status").as_str(), Some("ok"));
    assert_eq!(
        field(&parsed[0], "throughput").as_str().unwrap(),
        throughput_to_string(reference.throughput)
    );
    assert_eq!(
        field(&parsed[0], "iterations").as_u64(),
        Some(reference.iterations as u64)
    );

    let points = field(&parsed[1], "points").as_array().unwrap();
    assert_eq!(points.len(), 3);
    for (point, slack) in points.iter().zip([1u64, 2, 4]) {
        assert_eq!(field(point, "slack").as_u64(), Some(slack));
    }
    assert!(!field(&parsed[1], "frontier").as_array().unwrap().is_empty());

    assert_eq!(field(&parsed[2], "feasible").as_bool(), Some(true));
    assert!(field(&parsed[2], "slack").as_u64().unwrap() >= 1);

    let scenarios = field(&parsed[3], "scenarios").as_array().unwrap();
    assert_eq!(scenarios.len(), 2);
    assert_eq!(field(&scenarios[0], "name").as_str(), Some("tight"));
    assert_eq!(
        field(&scenarios[1], "throughput").as_str().unwrap(),
        throughput_to_string(reference.throughput)
    );

    assert_eq!(field(&parsed[4], "status").as_str(), Some("error"));
    assert_eq!(field(&parsed[4], "id").as_i128(), Some(14));
}

#[test]
fn concurrent_same_structure_clients_match_cold_evaluations() {
    // Many marking variants of one structure: every request routes to the
    // same fingerprint bucket of the pool, so almost all checkouts re-target
    // a warm session — and every response must still be bit-identical to a
    // cold evaluation of its own graph.
    let markings: Vec<u64> = (1..=24).collect();
    let batch: Vec<String> = markings
        .iter()
        .map(|&tokens| evaluate_request(tokens as usize, &ring(tokens)))
        .collect();
    let daemon = Daemon::new(ServiceConfig {
        workers: 6,
        pool_capacity: 4,
        cache_capacity: 4,
        ..ServiceConfig::default()
    });
    let responses = daemon.run_batch(&batch.join("\n"));
    assert_eq!(responses.len(), markings.len());
    for (&tokens, line) in markings.iter().zip(&responses) {
        let response = Json::parse(line).unwrap();
        let reference = kperiodic::optimal_throughput(&ring(tokens)).unwrap();
        assert_eq!(field(&response, "status").as_str(), Some("ok"), "{line}");
        assert_eq!(
            field(&response, "throughput").as_str().unwrap(),
            throughput_to_string(reference.throughput),
            "tokens = {tokens}"
        );
        assert_eq!(
            field(&response, "iterations").as_u64(),
            Some(reference.iterations as u64),
            "tokens = {tokens}"
        );
        let periodicity: Vec<u64> = field(&response, "periodicity")
            .as_array()
            .unwrap()
            .iter()
            .map(|entry| entry.as_u64().unwrap())
            .collect();
        let expected: Vec<u64> = (0..reference.periodicity.len())
            .map(|index| reference.periodicity.get(csdf::TaskId::new(index)))
            .collect();
        assert_eq!(periodicity, expected, "tokens = {tokens}");
    }
    let pool = daemon.pool_stats();
    assert_eq!(pool.checkouts, markings.len());
    assert!(
        pool.warm > 0,
        "same-structure batch must reuse warm sessions: {pool:?}"
    );
}

#[test]
fn cache_hits_never_outlive_a_structure_change() {
    let daemon = Daemon::new(ServiceConfig::default());
    let graph = ring(3);

    let first = daemon.run_batch(&evaluate_request(1, &graph));
    assert!(first[0].contains(r#""cache":"miss""#));
    let second = daemon.run_batch(&evaluate_request(2, &graph));
    assert!(second[0].contains(r#""cache":"hit""#));

    // Same task/buffer counts, one duration changed: different structure
    // fingerprint, so the cached result must not be served.
    let mut changed = CsdfGraphBuilder::new();
    let x = changed.add_sdf_task("x", 5);
    let y = changed.add_task("y", vec![1, 3]);
    let z = changed.add_sdf_task("z", 1);
    changed.add_buffer(x, y, vec![2], vec![1, 1], 0);
    changed.add_buffer(y, z, vec![1, 1], vec![2], 0);
    changed.add_sdf_buffer(z, x, 1, 1, 3);
    let changed = changed.build().unwrap();
    let third = daemon.run_batch(&evaluate_request(3, &changed));
    assert!(third[0].contains(r#""cache":"miss""#), "{}", third[0]);
    let reference = kperiodic::optimal_throughput(&changed).unwrap();
    assert!(third[0].contains(&format!(
        r#""throughput":"{}""#,
        throughput_to_string(reference.throughput)
    )));

    // A marking change on the same structure also misses.
    let fourth = daemon.run_batch(&evaluate_request(4, &ring(4)));
    assert!(fourth[0].contains(r#""cache":"miss""#));
    let stats = daemon.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 3));
}

#[test]
fn lint_and_verify_cross_check_the_solver() {
    let daemon = Daemon::new(ServiceConfig::default());
    let graph = ring(2);
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(&graph))),
    ]);

    // Lint on a live graph: no errors, bounds bracket the exact answer.
    let lint =
        Json::parse(&daemon.handle_line(&format!(r#"{{"id":1,"type":"lint","graph":{spec}}}"#)))
            .unwrap();
    assert_eq!(field(&lint, "status").as_str(), Some("ok"));
    assert_eq!(field(&lint, "errors").as_u64(), Some(0));
    assert_eq!(field(&lint, "certain_deadlock").as_bool(), Some(false));
    let bounds = field(&lint, "bounds");
    assert!(bounds.get("lower").is_some() && bounds.get("upper").is_some());

    // Verify on the fully serialised ring: lint's bounds are sound for the
    // solver's model, so solver, bounds and expansion baseline all agree.
    let serialized = serialized_ring(2);
    let serialized_spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        (
            "source".to_string(),
            Json::Str(csdf::text::to_text(&serialized)),
        ),
    ]);
    let verify = Json::parse(&daemon.handle_line(&format!(
        r#"{{"id":2,"type":"verify","graph":{serialized_spec}}}"#
    )))
    .unwrap();
    assert_eq!(field(&verify, "status").as_str(), Some("ok"));
    assert_eq!(field(&verify, "verdict").as_str(), Some("agree"));
    let reference = kperiodic::optimal_throughput(&serialized).unwrap();
    assert_eq!(
        field(&verify, "throughput").as_str().unwrap(),
        throughput_to_string(reference.throughput)
    );
    assert_eq!(
        field(&verify, "baseline").as_str().unwrap(),
        throughput_to_string(reference.throughput)
    );
    let checks = field(&verify, "checks").as_array().unwrap();
    let names: Vec<&str> = checks
        .iter()
        .map(|check| field(check, "check").as_str().unwrap())
        .collect();
    assert!(names.contains(&"bounds_bracket"));
    assert!(names.contains(&"baseline_agreement"));
    assert!(checks
        .iter()
        .all(|check| field(check, "passed").as_bool() == Some(true)));

    // Verify on the non-serialised ring surfaces the model divergence: the
    // solver's event graph leaves the multiphase task's firings unordered and
    // reports unbounded throughput, while the expansion baseline (which does
    // order them) finds a finite rate. This is exactly the class of
    // discrepancy the verify layer exists to catch; if the event-graph model
    // ever gains phase-serialisation precedences, this verdict should flip
    // to "agree" and the assertion below with it.
    let verify =
        Json::parse(&daemon.handle_line(&format!(r#"{{"id":5,"type":"verify","graph":{spec}}}"#)))
            .unwrap();
    assert_eq!(field(&verify, "status").as_str(), Some("ok"));
    assert_eq!(field(&verify, "verdict").as_str(), Some("disagree"));
    let failed: Vec<&str> = field(&verify, "checks")
        .as_array()
        .unwrap()
        .iter()
        .filter(|check| field(check, "passed").as_bool() == Some(false))
        .map(|check| field(check, "check").as_str().unwrap())
        .collect();
    assert_eq!(failed, vec!["baseline_agreement"]);

    // A deadlocked design: lint proves it, verify confirms solver agreement.
    // (Serialised for the same reason as above: on the non-serialised ring
    // the solver's event graph misses the empty cycle and reports unbounded.)
    let dead = serialized_ring(0);
    let dead_spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(&dead))),
    ]);
    let verify = Json::parse(&daemon.handle_line(&format!(
        r#"{{"id":3,"type":"verify","graph":{dead_spec}}}"#
    )))
    .unwrap();
    assert_eq!(field(&verify, "certain_deadlock").as_bool(), Some(true));
    assert_eq!(field(&verify, "throughput").as_str(), Some("deadlock"));
    assert_eq!(field(&verify, "verdict").as_str(), Some("agree"));

    // A broken source: the lint request stays `ok` with an L000 diagnostic.
    let lint = Json::parse(&daemon.handle_line(
        r#"{"id":4,"type":"lint","graph":{"format":"text","source":"graph g\nnonsense\n"}}"#,
    ))
    .unwrap();
    assert_eq!(field(&lint, "status").as_str(), Some("ok"));
    assert_eq!(field(&lint, "errors").as_u64(), Some(1));
    let diagnostics = field(&lint, "diagnostics").as_array().unwrap();
    assert_eq!(field(&diagnostics[0], "code").as_str(), Some("L000"));
    assert_eq!(field(&diagnostics[0], "line").as_u64(), Some(2));
}

#[cfg(unix)]
#[test]
fn unix_socket_responses_are_bit_identical_to_the_batch_transport() {
    let graph = ring(2);
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(&graph))),
    ]);
    let requests = [
        format!(r#"{{"id":1,"type":"evaluate","graph":{spec}}}"#),
        format!(r#"{{"id":2,"type":"sweep","graph":{spec},"slacks":[1,3]}}"#),
        format!(
            r#"{{"id":3,"type":"scenario_set","graph":{spec},"scenarios":[{{"name":"s","markings":[[2,5]]}}]}}"#
        ),
        format!(r#"{{"id":4,"type":"lint","graph":{spec}}}"#),
        format!(r#"{{"id":5,"type":"verify","graph":{spec}}}"#),
    ];

    let batch_daemon = Daemon::new(ServiceConfig::default());
    let expected = batch_daemon.run_batch(&requests.join("\n"));

    let socket_daemon = Daemon::new(ServiceConfig::default());
    let path = std::env::temp_dir().join(format!("csdf-service-test-{}.sock", std::process::id()));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| socket_daemon.serve_unix(&path, Some(2)));
        let connect = || {
            for _ in 0..200 {
                if let Ok(stream) = std::os::unix::net::UnixStream::connect(&path) {
                    return stream;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("daemon socket never came up at {}", path.display());
        };

        // First connection: the evaluate request.
        let stream = connect();
        writeln!(&stream, "{}", requests[0]).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(&stream).lines();
        assert_eq!(lines.next().unwrap().unwrap(), expected[0]);

        // Second connection streams the remaining two without closing in
        // between: one response per line, in order.
        let stream = connect();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for (request, expected) in requests[1..].iter().zip(&expected[1..]) {
            writeln!(&stream, "{request}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), expected);
        }
        drop(stream);
        drop(reader);
        server.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_file(&path);
}
