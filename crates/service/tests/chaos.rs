//! Chaos tests: the daemon must survive any single request.
//!
//! Every test drives faults through the `fault-injection` feature (panics,
//! delays and injected errors at request-handling sites) or through
//! adversarial configuration (tiny admission caps, zero deadlines) and then
//! asserts the containment contract: the faulty request gets a typed error
//! response, the *next* request succeeds, and the pool's accounting shows no
//! leaked session (`checkouts == returned + quarantined`).

use csdf::{CsdfGraph, CsdfGraphBuilder};
use csdf_service::{Daemon, FaultAction, FaultPlan, FaultSite, Json, ServiceConfig};

fn ring(tokens: u64) -> CsdfGraph {
    let mut b = CsdfGraphBuilder::new();
    let x = b.add_sdf_task("x", 2);
    let y = b.add_sdf_task("y", 1);
    b.add_sdf_buffer(x, y, 1, 1, 0);
    b.add_sdf_buffer(y, x, 1, 1, tokens);
    b.build().unwrap()
}

fn evaluate_request(id: usize, graph: &CsdfGraph) -> String {
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(graph))),
    ]);
    format!(r#"{{"id":{id},"type":"evaluate","graph":{spec}}}"#)
}

fn field<'a>(response: &'a Json, name: &str) -> &'a Json {
    response.get(name).unwrap_or(&Json::Null)
}

fn error_kind(response: &Json) -> Option<String> {
    field(response, "error")
        .get("kind")
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// No session may leak, whatever mix of faults ran.
fn assert_no_session_leak(daemon: &Daemon) {
    let pool = daemon.pool_stats();
    assert_eq!(
        pool.checkouts,
        pool.returned + pool.quarantined,
        "session leak: {pool:?}"
    );
}

#[test]
fn panic_during_checkout_poisons_the_pool_and_the_daemon_recovers() {
    // The first checkout panics *inside the pool lock*, genuinely poisoning
    // the mutex — the worst single-request failure the pool can see.
    let plan = FaultPlan::new().inject_window(FaultSite::Checkout, 0, 1, FaultAction::Panic);
    let daemon = Daemon::new(ServiceConfig::default()).with_fault_plan(plan);

    let hit = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(field(&hit, "status").as_str(), Some("error"));
    assert_eq!(error_kind(&hit).as_deref(), Some("internal_panic"));
    assert_eq!(field(&hit, "id").as_i128(), Some(1));

    // The next request finds the poisoned lock, rebuilds the pool and
    // answers normally.
    let next = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(3)))).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"), "{next}");
    let reference = kperiodic::optimal_throughput(&ring(3)).unwrap();
    assert_eq!(
        field(&next, "throughput").as_str().unwrap(),
        csdf_service::throughput_to_string(reference.throughput)
    );

    let stats = daemon.service_stats();
    assert_eq!(stats.panics_caught, 1);
    assert!(stats.pool_poison_recoveries >= 1, "{stats:?}");
    assert_no_session_leak(&daemon);
}

#[test]
fn panic_mid_request_quarantines_the_session() {
    // The panic fires after checkout, while the session is out of the pool:
    // the unwinding lease must quarantine it, never refile it.
    let plan = FaultPlan::new().inject_window(FaultSite::Patch, 0, 1, FaultAction::Panic);
    let daemon = Daemon::new(ServiceConfig::default()).with_fault_plan(plan);

    let hit = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("internal_panic"));

    let pool = daemon.pool_stats();
    assert_eq!((pool.quarantined, pool.returned), (1, 0), "{pool:?}");

    // The daemon stays live and the quarantined session never resurfaces:
    // the follow-up evaluation is a cold checkout with the right answer.
    let next = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(3)))).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"), "{next}");
    let pool = daemon.pool_stats();
    assert_eq!(pool.cold, 2, "quarantined session must not be reused");
    assert_no_session_leak(&daemon);
}

#[test]
fn injected_solve_errors_quarantine_without_unwinding() {
    let plan = FaultPlan::new().inject_window(
        FaultSite::Solve,
        0,
        1,
        FaultAction::Error("injected solver fault".to_string()),
    );
    let daemon = Daemon::new(ServiceConfig::default()).with_fault_plan(plan);

    let hit = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("evaluation"));
    assert!(
        field(&hit, "error")
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("injected solver fault"),
        "{hit}"
    );
    // An error (no panic) still quarantines: the session may be mid-mutation.
    assert_eq!(daemon.pool_stats().quarantined, 1);
    assert_eq!(daemon.service_stats().panics_caught, 0);

    let next = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(3)))).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"));
    assert_no_session_leak(&daemon);
}

#[test]
fn zero_deadline_cancels_before_the_solve() {
    let daemon = Daemon::new(ServiceConfig::default());
    let line = format!(
        r#"{{"id":9,"deadline_ms":0,"type":"evaluate","graph":{{"format":"text","source":{}}}}}"#,
        Json::Str(csdf::text::to_text(&ring(3)))
    );
    let hit = Json::parse(&daemon.handle_line(&line)).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("deadline_exceeded"));
    assert_eq!(field(&hit, "id").as_i128(), Some(9));
    assert_eq!(daemon.service_stats().deadline_exceeded, 1);

    // Without a deadline the same request succeeds.
    let next = Json::parse(&daemon.handle_line(&evaluate_request(10, &ring(3)))).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"));
    assert_no_session_leak(&daemon);
}

/// A 100k-task single-SCC graph takes ~15 s of MCR solving when healthy —
/// far beyond the request's deadline. The evaluation must die *by deadline*
/// (the intra-SCC kernels poll the [`kperiodic::CancelToken`] between chunk
/// rounds, so even one huge component cannot outrun cancellation), never by
/// hanging until the solve completes, and the daemon must stay live. Debug
/// builds skip it (the `ignore` is gated on `debug_assertions`; the graph
/// alone is tens of MB of request text); in release builds it runs
/// normally, and CI has a dedicated `cargo test --release -p csdf-service
/// --test chaos` step for exactly that.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "100k-task graph; meaningful in release only"
)]
fn hundred_k_task_request_dies_by_deadline_not_by_hang() {
    let graph =
        csdf_generators::random_graph(&csdf_generators::RandomGraphConfig::large(100_000), 0xD0C5)
            .expect("100k-task random graph generates");
    // The graph's text form is far beyond the default 1 MiB line cap, so the
    // request is only admissible with a raised cap.
    let daemon = Daemon::new(ServiceConfig {
        max_line_bytes: 64 << 20,
        ..ServiceConfig::default()
    });
    let line = format!(
        r#"{{"id":1,"deadline_ms":500,"type":"evaluate","graph":{{"format":"text","source":{}}}}}"#,
        Json::Str(csdf::text::to_text(&graph))
    );
    let started = std::time::Instant::now();
    let hit = Json::parse(&daemon.handle_line(&line)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(
        error_kind(&hit).as_deref(),
        Some("deadline_exceeded"),
        "{hit}"
    );
    assert_eq!(field(&hit, "id").as_i128(), Some(1));
    // Generous bound (parsing tens of MB of request text is itself seconds
    // of work), but far below the ~20 s an uncancelled evaluation costs.
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "deadline-exceeded answer took {elapsed:?}"
    );
    assert_eq!(daemon.service_stats().deadline_exceeded, 1);

    // The daemon is still live and answers a small request exactly.
    let next = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(3)))).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"), "{next}");
    assert_no_session_leak(&daemon);
}

#[test]
fn daemon_default_deadline_applies_when_the_request_has_none() {
    let daemon = Daemon::new(ServiceConfig {
        default_deadline_ms: Some(0),
        ..ServiceConfig::default()
    });
    let hit = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("deadline_exceeded"));

    // A request-level deadline overrides the daemon default.
    let line = format!(
        r#"{{"id":2,"deadline_ms":60000,"type":"evaluate","graph":{{"format":"text","source":{}}}}}"#,
        Json::Str(csdf::text::to_text(&ring(3)))
    );
    let next = Json::parse(&daemon.handle_line(&line)).unwrap();
    assert_eq!(field(&next, "status").as_str(), Some("ok"), "{next}");
    assert_no_session_leak(&daemon);
}

#[test]
fn admission_caps_shed_oversized_graphs_and_lines() {
    let daemon = Daemon::new(ServiceConfig {
        max_tasks: 1,
        max_line_bytes: 512,
        ..ServiceConfig::default()
    });

    // Two tasks against a one-task cap: typed rejection, nothing evaluated.
    let hit = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("rejected"));
    assert_eq!(daemon.pool_stats().checkouts, 0);

    // An over-long line is rejected before parsing, with the id still
    // echoed from the readable prefix.
    let long = format!(
        r#"{{"id":77,"type":"evaluate","junk":"{}"}}"#,
        "x".repeat(1024)
    );
    let hit = Json::parse(&daemon.handle_line(&long)).unwrap();
    assert_eq!(error_kind(&hit).as_deref(), Some("rejected"));
    assert_eq!(field(&hit, "id").as_i128(), Some(77));

    assert_eq!(daemon.service_stats().rejected, 2);
    assert_no_session_leak(&daemon);
}

#[test]
fn inflight_limit_sheds_concurrent_load() {
    // Every admitted request stalls 400 ms at the parse site; with a
    // one-request in-flight cap the second concurrent request must be shed.
    let plan = FaultPlan::new().inject(
        FaultSite::Parse,
        FaultAction::Delay(std::time::Duration::from_millis(400)),
    );
    let daemon = Daemon::new(ServiceConfig {
        max_inflight: 1,
        ..ServiceConfig::default()
    })
    .with_fault_plan(plan);

    std::thread::scope(|scope| {
        let slow = scope.spawn(|| daemon.handle_line(&evaluate_request(1, &ring(3))));
        // Give the first request time to be admitted and start its delay.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let shed = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(4)))).unwrap();
        assert_eq!(error_kind(&shed).as_deref(), Some("rejected"), "{shed}");
        let slow = Json::parse(&slow.join().unwrap()).unwrap();
        assert_eq!(field(&slow, "status").as_str(), Some("ok"), "{slow}");
    });
    assert_eq!(daemon.service_stats().rejected, 1);
    assert_eq!(daemon.service_stats().inflight, 0);
    assert_no_session_leak(&daemon);
}

#[test]
fn streaming_transport_bounds_reads_and_stays_in_sync() {
    let daemon = Daemon::new(ServiceConfig {
        max_line_bytes: 256,
        ..ServiceConfig::default()
    });
    // An oversize line between two valid requests: the middle response is a
    // rejection and the final request still gets its real answer — the
    // stream never desynchronises.
    let flood = format!(r#"{{"id":2,"flood":"{}"}}"#, "y".repeat(4096));
    let input = format!(
        "{}\n{flood}\n{}\n",
        evaluate_request(1, &ring(3)),
        evaluate_request(3, &ring(3)),
    );
    let mut output = Vec::new();
    daemon
        .serve_lines(std::io::Cursor::new(input.into_bytes()), &mut output)
        .unwrap();
    let responses: Vec<Json> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|line| Json::parse(line).unwrap())
        .collect();
    assert_eq!(responses.len(), 3);
    assert_eq!(field(&responses[0], "status").as_str(), Some("ok"));
    assert_eq!(error_kind(&responses[1]).as_deref(), Some("rejected"));
    assert_eq!(field(&responses[1], "id").as_i128(), Some(2));
    assert_eq!(field(&responses[2], "status").as_str(), Some("ok"));
    assert_eq!(field(&responses[2], "cache").as_str(), Some("hit"));
}

#[test]
fn parse_failures_are_typed_and_correlated() {
    let daemon = Daemon::new(ServiceConfig::default());

    let garbage = Json::parse(&daemon.handle_line("not json at all")).unwrap();
    assert_eq!(field(&garbage, "status").as_str(), Some("error"));
    assert_eq!(error_kind(&garbage).as_deref(), Some("parse"));
    assert_eq!(field(&garbage, "id"), &Json::Null);

    let bad_type = Json::parse(&daemon.handle_line(r#"{"id":7,"type":"bogus"}"#)).unwrap();
    assert_eq!(error_kind(&bad_type).as_deref(), Some("parse"));
    assert_eq!(field(&bad_type, "id").as_i128(), Some(7));

    let bad_deadline =
        Json::parse(&daemon.handle_line(r#"{"id":8,"type":"evaluate","deadline_ms":"soon"}"#))
            .unwrap();
    assert_eq!(error_kind(&bad_deadline).as_deref(), Some("parse"));
    assert_eq!(field(&bad_deadline, "id").as_i128(), Some(8));
}

#[test]
fn cache_panics_recover_and_keep_answers_correct() {
    // The second cache access panics inside the cache lock. The first
    // request primes the cache; the second (same graph) panics mid-lookup
    // and poisons the mutex; the third must recover, re-evaluate (the cache
    // restarted empty) and still produce the exact answer.
    let plan = FaultPlan::new().inject_window(FaultSite::Cache, 1, 1, FaultAction::Panic);
    let daemon = Daemon::new(ServiceConfig::default()).with_fault_plan(plan);

    let first = Json::parse(&daemon.handle_line(&evaluate_request(1, &ring(3)))).unwrap();
    assert_eq!(field(&first, "status").as_str(), Some("ok"));
    assert_eq!(field(&first, "cache").as_str(), Some("miss"));

    let second = Json::parse(&daemon.handle_line(&evaluate_request(2, &ring(3)))).unwrap();
    assert_eq!(error_kind(&second).as_deref(), Some("internal_panic"));

    let third = Json::parse(&daemon.handle_line(&evaluate_request(3, &ring(3)))).unwrap();
    assert_eq!(field(&third, "status").as_str(), Some("ok"), "{third}");
    assert_eq!(field(&third, "cache").as_str(), Some("miss"));
    assert_eq!(
        field(&third, "throughput").as_str(),
        field(&first, "throughput").as_str()
    );
    assert!(daemon.service_stats().cache_poison_recoveries >= 1);
    assert_no_session_leak(&daemon);
}
