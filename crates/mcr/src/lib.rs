//! # mcr — Maximum Cycle Ratio / Maximum Cycle Mean solvers
//!
//! The K-Iter algorithm (DAC 2016) evaluates the minimum period of a
//! (K-)periodic schedule by solving a *Maximum Cost-to-time Ratio Problem*
//! on a bi-valued event graph (Section 3.3 of the paper). This crate provides:
//!
//! * [`RatioGraph`] — a directed graph whose arcs carry a cost `L(e)` and a
//!   time `H(e)`;
//! * [`Solver`] / [`SolverChoice`] — the solver-selection layer with
//!   reusable scratch buffers (CSR adjacency, SCC decomposition, component
//!   views — nothing is allocated per solve after warm-up): Howard's policy
//!   iteration (the fast solver on large event graphs, with an
//!   integer-numerator inner loop over per-component common denominators —
//!   see the `kernel` module — and a scalar fallback), the exact parametric
//!   method, and Karp's dynamic program for the unit-time special case.
//!   `SolverChoice::Auto` picks per strongly connected component and is what
//!   K-Iter uses; [`Solver::with_threads`] solves independent cyclic
//!   components on a `std::thread::scope` worker pool with a deterministic
//!   component-order merge, and at two or more threads the sweeps *inside*
//!   each large component (at least [`INTRA_MIN_NODES`] nodes) run on the
//!   chunked Howard/certifier kernels of the `chunked` module — so results
//!   are byte-identical at any width, including on one-giant-SCC graphs;
//! * [`maximum_cycle_ratio`] — one-shot parametric solve returning the
//!   maximum ratio and a critical circuit ([`CycleRatioOutcome`]);
//! * [`maximum_cycle_ratio_with`] — one-shot solve with an explicit
//!   [`SolverChoice`];
//! * [`maximum_cycle_mean`] — Karp's algorithm for the unit-time special
//!   case (`O(n)` memory, two rolling-row passes);
//! * [`maximum_cycle_ratio_brute_force`] / [`enumerate_elementary_cycles`] —
//!   an exhaustive oracle for tests;
//! * [`SccDecomposition`] — Tarjan's strongly connected components.
//!
//! Every solver choice returns identical outcomes on every input: Howard's
//! iteration certifies its result or defers to the parametric method, which
//! is the reference semantics.
//!
//! # Examples
//!
//! ```
//! use mcr::{RatioGraph, maximum_cycle_ratio, CycleRatioOutcome};
//! use csdf::Rational;
//!
//! let mut graph = RatioGraph::new(2);
//! let (a, b) = (graph.node(0), graph.node(1));
//! graph.add_arc(a, b, Rational::from_integer(2), Rational::from_integer(1));
//! graph.add_arc(b, a, Rational::from_integer(4), Rational::from_integer(2));
//! let outcome = maximum_cycle_ratio(&graph)?;
//! assert_eq!(outcome.ratio(), Some(Rational::from_integer(2)));
//! # Ok::<(), mcr::McrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod cancel;
mod chunked;
mod graph;
mod howard;
mod karp;
mod kernel;
mod scc;
mod solve;

pub use brute::{enumerate_elementary_cycles, maximum_cycle_ratio_brute_force};
pub use cancel::CancelToken;
pub use graph::{Arc, ArcId, NodeId, RatioGraph};
pub use karp::maximum_cycle_mean;
pub use scc::SccDecomposition;
pub use solve::{
    maximum_cycle_ratio, maximum_cycle_ratio_with, CriticalCycle, CycleRatioOutcome, McrError,
    Solver, SolverChoice, AUTO_HOWARD_MIN_NODES, INTRA_MIN_NODES,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RatioGraph>();
        assert_send_sync::<CycleRatioOutcome>();
        assert_send_sync::<CriticalCycle>();
        assert_send_sync::<McrError>();
        assert_send_sync::<SccDecomposition>();
        assert_send_sync::<Solver>();
        assert_send_sync::<SolverChoice>();
        assert_send_sync::<CancelToken>();
    }
}
