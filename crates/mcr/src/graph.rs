//! Bi-valued directed graphs for cost-to-time ratio problems.

use std::fmt;

use csdf::Rational;

/// Index of a node in a [`RatioGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an arc in a [`RatioGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub(crate) usize);

impl ArcId {
    /// Creates an arc id from a raw index.
    pub fn new(index: usize) -> Self {
        ArcId(index)
    }

    /// The raw dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An arc bi-valued by a cost `L(e)` and a time `H(e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Cost `L(e)` (numerator contribution of the cycle ratio).
    pub cost: Rational,
    /// Time `H(e)` (denominator contribution of the cycle ratio). Individual
    /// arcs may carry zero or negative time; only cycle sums matter.
    pub time: Rational,
}

/// A directed graph whose arcs carry a cost and a time, on which the
/// *maximum cost-to-time ratio* `λ = max_c ΣL(c) / ΣH(c)` is computed.
///
/// This is the "bi-valued graph" of Section 3.3 of the paper; the solver
/// lives in [`crate::maximum_cycle_ratio`].
///
/// # Growing and patching
///
/// Besides one-shot construction ([`RatioGraph::new`] + [`RatioGraph::add_arc`]),
/// the graph supports in-place reuse for callers that repeatedly rebuild
/// almost-identical graphs (the K-Iter event-graph arena): [`RatioGraph::add_node`]
/// appends node blocks, [`RatioGraph::reserve_arcs`] pre-sizes the arc storage,
/// and [`RatioGraph::reset`] clears the arc set while keeping every allocation
/// (the arc vector and each node's adjacency list capacity), so re-emitting
/// the arcs of an updated graph performs no per-node reallocation.
///
/// Two graphs compare equal ([`PartialEq`]) when they have the same node
/// count and the same arcs, in the same insertion order, with bit-identical
/// cost and time values.
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, maximum_cycle_ratio, CycleRatioOutcome};
/// use csdf::Rational;
///
/// let mut graph = RatioGraph::new(2);
/// let a = graph.node(0);
/// let b = graph.node(1);
/// graph.add_arc(a, b, Rational::from_integer(3), Rational::from_integer(1));
/// graph.add_arc(b, a, Rational::from_integer(1), Rational::from_integer(1));
/// let outcome = maximum_cycle_ratio(&graph)?;
/// match outcome {
///     CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, Rational::from_integer(2)),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// # Ok::<(), mcr::McrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RatioGraph {
    node_count: usize,
    arcs: Vec<Arc>,
    outgoing: Vec<Vec<ArcId>>,
}

impl RatioGraph {
    /// Creates a graph with `node_count` nodes and no arcs.
    pub fn new(node_count: usize) -> Self {
        RatioGraph {
            node_count,
            arcs: Vec::new(),
            outgoing: vec![Vec::new(); node_count],
        }
    }

    /// Returns the node id for a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.node_count()`.
    pub fn node(&self, index: usize) -> NodeId {
        assert!(index < self.node_count, "node index out of range");
        NodeId(index)
    }

    /// Adds one more node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.outgoing.push(Vec::new());
        id
    }

    /// Clears the graph down to `node_count` isolated nodes while keeping
    /// every allocation: the arc storage and the per-node adjacency vectors
    /// retain their capacity, so arcs can be re-emitted without reallocating.
    ///
    /// Shrinking drops the adjacency vectors of removed nodes; growing
    /// appends empty ones.
    pub fn reset(&mut self, node_count: usize) {
        self.arcs.clear();
        self.outgoing.truncate(node_count);
        for adjacency in &mut self.outgoing {
            adjacency.clear();
        }
        self.outgoing.resize_with(node_count, Vec::new);
        self.node_count = node_count;
    }

    /// Reserves capacity for at least `additional` more arcs.
    pub fn reserve_arcs(&mut self, additional: usize) {
        self.arcs.reserve(additional);
    }

    /// Adds an arc and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, cost: Rational, time: Rational) -> ArcId {
        assert!(from.0 < self.node_count && to.0 < self.node_count);
        let id = ArcId(self.arcs.len());
        self.arcs.push(Arc {
            from,
            to,
            cost,
            time,
        });
        self.outgoing[from.0].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc addressed by `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.0]
    }

    /// Iterator over `(ArcId, &Arc)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> + '_ {
        self.arcs.iter().enumerate().map(|(i, a)| (ArcId(i), a))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Arcs leaving `node`.
    pub fn outgoing(&self, node: NodeId) -> &[ArcId] {
        &self.outgoing[node.0]
    }

    /// Sum of the costs and times along a sequence of arcs.
    ///
    /// # Errors
    ///
    /// Returns [`csdf::RationalError`] on overflow.
    pub fn path_weight(&self, arcs: &[ArcId]) -> Result<(Rational, Rational), csdf::RationalError> {
        let mut cost = Rational::ZERO;
        let mut time = Rational::ZERO;
        for &arc_id in arcs {
            let arc = self.arc(arc_id);
            cost = cost.checked_add(&arc.cost)?;
            time = time.checked_add(&arc.time)?;
        }
        Ok((cost, time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_adjacency() {
        let mut g = RatioGraph::new(2);
        let extra = g.add_node();
        assert_eq!(g.node_count(), 3);
        let a = g.node(0);
        let b = g.node(1);
        let e1 = g.add_arc(a, b, Rational::ONE, Rational::ONE);
        let e2 = g.add_arc(b, extra, Rational::from_integer(2), Rational::ZERO);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.outgoing(a), &[e1]);
        assert_eq!(g.outgoing(b), &[e2]);
        assert_eq!(g.arc(e2).cost, Rational::from_integer(2));
        assert_eq!(g.nodes().count(), 3);
    }

    #[test]
    fn path_weight_sums_costs_and_times() {
        let mut g = RatioGraph::new(3);
        let e1 = g.add_arc(
            g.node(0),
            g.node(1),
            Rational::from_integer(1),
            Rational::new(1, 2).unwrap(),
        );
        let e2 = g.add_arc(
            g.node(1),
            g.node(2),
            Rational::from_integer(2),
            Rational::new(1, 3).unwrap(),
        );
        let (cost, time) = g.path_weight(&[e1, e2]).unwrap();
        assert_eq!(cost, Rational::from_integer(3));
        assert_eq!(time, Rational::new(5, 6).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let g = RatioGraph::new(1);
        let _ = g.node(5);
    }

    #[test]
    fn reset_keeps_capacity_and_restores_equality() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        let reference = g.clone();

        g.reset(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 0);
        assert!(g.outgoing(g.node(0)).is_empty());

        g.reset(2);
        g.reserve_arcs(2);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        assert_eq!(g, reference);
    }
}
