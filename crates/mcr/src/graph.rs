//! Bi-valued directed graphs for cost-to-time ratio problems.

use std::fmt;

use csdf::Rational;

/// Index of a node in a [`RatioGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an arc in a [`RatioGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub(crate) usize);

impl ArcId {
    /// Creates an arc id from a raw index.
    pub fn new(index: usize) -> Self {
        ArcId(index)
    }

    /// The raw dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An arc bi-valued by a cost `L(e)` and a time `H(e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Cost `L(e)` (numerator contribution of the cycle ratio).
    pub cost: Rational,
    /// Time `H(e)` (denominator contribution of the cycle ratio). Individual
    /// arcs may carry zero or negative time; only cycle sums matter.
    pub time: Rational,
}

/// A directed graph whose arcs carry a cost and a time, on which the
/// *maximum cost-to-time ratio* `λ = max_c ΣL(c) / ΣH(c)` is computed.
///
/// This is the "bi-valued graph" of Section 3.3 of the paper; the solver
/// lives in [`crate::maximum_cycle_ratio`].
///
/// # Adjacency layout
///
/// Arcs are stored in one flat insertion-ordered vector; the per-node
/// adjacency is a CSR (compressed sparse row) index over it — two flat
/// arrays `arc_offsets`/`arc_index` instead of the pointer-chasing
/// `Vec<Vec<ArcId>>` of earlier revisions. The CSR is rebuilt by a stable
/// counting sort in [`RatioGraph::rebuild_adjacency`]; mutations
/// ([`RatioGraph::add_arc`], [`RatioGraph::reset`]) mark it stale, and
/// [`RatioGraph::outgoing`] panics on a stale index (call
/// `rebuild_adjacency` after the last mutation). The MCR [`crate::Solver`]
/// does not require a rebuilt adjacency — it keeps its own CSR scratch for
/// graphs handed to it mid-construction.
///
/// # Growing and patching
///
/// Besides one-shot construction ([`RatioGraph::new`] + [`RatioGraph::add_arc`]),
/// the graph supports in-place reuse for callers that repeatedly rebuild
/// almost-identical graphs (the K-Iter event-graph arena): [`RatioGraph::add_node`]
/// appends node blocks, [`RatioGraph::reserve_arcs`] pre-sizes the arc storage,
/// and [`RatioGraph::reset`] clears the arc set while keeping every allocation
/// (the arc vector and both CSR arrays keep their capacity), so re-emitting
/// the arcs of an updated graph performs no per-node reallocation.
///
/// Two graphs compare equal ([`PartialEq`]) when they have the same node
/// count and the same arcs, in the same insertion order, with bit-identical
/// cost and time values (the CSR index is derived state and not compared).
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, maximum_cycle_ratio, CycleRatioOutcome};
/// use csdf::Rational;
///
/// let mut graph = RatioGraph::new(2);
/// let a = graph.node(0);
/// let b = graph.node(1);
/// graph.add_arc(a, b, Rational::from_integer(3), Rational::from_integer(1));
/// graph.add_arc(b, a, Rational::from_integer(1), Rational::from_integer(1));
/// let outcome = maximum_cycle_ratio(&graph)?;
/// match outcome {
///     CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, Rational::from_integer(2)),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// # Ok::<(), mcr::McrError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RatioGraph {
    node_count: usize,
    arcs: Vec<Arc>,
    /// CSR adjacency: `arc_index[arc_offsets[v] .. arc_offsets[v + 1]]` are
    /// the arcs leaving node `v`, in insertion order. Valid only while
    /// `adjacency_version == version` (any mutation since the last rebuild
    /// makes it stale).
    arc_offsets: Vec<u32>,
    arc_index: Vec<ArcId>,
    /// Mutation counter; `adjacency_version` snapshots it at rebuild time.
    version: u64,
    adjacency_version: u64,
}

impl PartialEq for RatioGraph {
    fn eq(&self, other: &Self) -> bool {
        // The CSR index and version counters are derived state.
        self.node_count == other.node_count && self.arcs == other.arcs
    }
}

impl Eq for RatioGraph {}

impl RatioGraph {
    /// Creates a graph with `node_count` nodes and no arcs.
    pub fn new(node_count: usize) -> Self {
        RatioGraph {
            node_count,
            arcs: Vec::new(),
            arc_offsets: Vec::new(),
            arc_index: Vec::new(),
            version: 1,
            adjacency_version: 0,
        }
    }

    /// Returns the node id for a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.node_count()`.
    pub fn node(&self, index: usize) -> NodeId {
        assert!(index < self.node_count, "node index out of range");
        NodeId(index)
    }

    /// Adds one more node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.version += 1;
        id
    }

    /// Clears the graph down to `node_count` isolated nodes while keeping
    /// every allocation: the arc storage and both CSR adjacency arrays
    /// retain their capacity, so arcs can be re-emitted without reallocating.
    pub fn reset(&mut self, node_count: usize) {
        self.arcs.clear();
        self.node_count = node_count;
        self.version += 1;
    }

    /// Reserves capacity for at least `additional` more arcs.
    pub fn reserve_arcs(&mut self, additional: usize) {
        self.arcs.reserve(additional);
    }

    /// Adds an arc and returns its id. O(1): the arc is appended to the flat
    /// arc vector; the CSR adjacency goes stale and is rebuilt in one pass by
    /// [`RatioGraph::rebuild_adjacency`].
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, cost: Rational, time: Rational) -> ArcId {
        assert!(from.0 < self.node_count && to.0 < self.node_count);
        let id = ArcId(self.arcs.len());
        self.arcs.push(Arc {
            from,
            to,
            cost,
            time,
        });
        self.version += 1;
        id
    }

    /// Overwrites the cost and time of an existing arc in place, keeping its
    /// endpoints. Because the CSR adjacency indexes arcs by source node only,
    /// a weights-only patch keeps a current index current — this is what lets
    /// the event-graph arena re-evaluate marking-only updates without paying
    /// the `O(nodes + arcs)` re-emission and counting sort.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn patch_arc_weights(&mut self, id: ArcId, cost: Rational, time: Rational) {
        let adjacency_was_current = self.adjacency_current();
        let arc = &mut self.arcs[id.0];
        arc.cost = cost;
        arc.time = time;
        self.version += 1;
        if adjacency_was_current {
            self.adjacency_version = self.version;
        }
    }

    /// Replaces an existing arc in place — endpoints and weights. The CSR
    /// adjacency goes stale (the arc may move to another source node's row);
    /// call [`RatioGraph::rebuild_adjacency`] after the last patch.
    ///
    /// # Panics
    ///
    /// Panics if the id or either endpoint is out of range.
    pub fn patch_arc(
        &mut self,
        id: ArcId,
        from: NodeId,
        to: NodeId,
        cost: Rational,
        time: Rational,
    ) {
        assert!(from.0 < self.node_count && to.0 < self.node_count);
        self.arcs[id.0] = Arc {
            from,
            to,
            cost,
            time,
        };
        self.version += 1;
    }

    /// Rebuilds the CSR adjacency index (`arc_offsets`/`arc_index`) with a
    /// stable counting sort over the flat arc vector: arcs leaving the same
    /// node keep their insertion order, matching the `Vec<Vec<ArcId>>`
    /// adjacency of earlier revisions bit for bit. Both arrays keep their
    /// allocation across [`RatioGraph::reset`], so the event-graph arena's
    /// grow/patch cycle performs no adjacency allocation after warm-up.
    ///
    /// No-op when the index is already current.
    pub fn rebuild_adjacency(&mut self) {
        if self.adjacency_current() {
            return;
        }
        build_csr(
            self.node_count,
            &self.arcs,
            &mut self.arc_offsets,
            &mut self.arc_index,
        );
        self.adjacency_version = self.version;
    }

    /// Whether the CSR adjacency reflects the current arc set.
    pub fn adjacency_current(&self) -> bool {
        self.adjacency_version == self.version
    }

    /// The CSR adjacency as flat `(arc_offsets, arc_index)` slices, when
    /// current (see [`RatioGraph::rebuild_adjacency`]).
    pub fn adjacency(&self) -> Option<(&[u32], &[ArcId])> {
        if self.adjacency_current() {
            Some((&self.arc_offsets, &self.arc_index))
        } else {
            None
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc addressed by `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.0]
    }

    /// Iterator over `(ArcId, &Arc)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> + '_ {
        self.arcs.iter().enumerate().map(|(i, a)| (ArcId(i), a))
    }

    /// The flat arc storage, indexed by [`ArcId`].
    pub(crate) fn raw_arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Arcs leaving `node`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or if the CSR adjacency is stale —
    /// call [`RatioGraph::rebuild_adjacency`] after the last mutation.
    pub fn outgoing(&self, node: NodeId) -> &[ArcId] {
        assert!(node.0 < self.node_count, "node index out of range");
        if self.arcs.is_empty() {
            return &[];
        }
        assert!(
            self.adjacency_current(),
            "CSR adjacency is stale; call rebuild_adjacency() after mutating the graph"
        );
        let lo = self.arc_offsets[node.0] as usize;
        let hi = self.arc_offsets[node.0 + 1] as usize;
        &self.arc_index[lo..hi]
    }

    /// Sum of the costs and times along a sequence of arcs, accumulated
    /// unreduced ([`csdf::RationalSum`]: no GCD per step, one reduction per
    /// sum at the end) — this is the path every critical-circuit
    /// materialization takes.
    ///
    /// # Errors
    ///
    /// Returns [`csdf::RationalError`] on overflow.
    pub fn path_weight(&self, arcs: &[ArcId]) -> Result<(Rational, Rational), csdf::RationalError> {
        let mut cost = csdf::RationalSum::new();
        let mut time = csdf::RationalSum::new();
        for &arc_id in arcs {
            let arc = self.arc(arc_id);
            cost.add(&arc.cost)?;
            time.add(&arc.time)?;
        }
        Ok((cost.finish(), time.finish()))
    }
}

/// Builds a CSR adjacency index over `arcs` into the two reusable arrays:
/// `offsets` gets `node_count + 1` entries and `index` one `ArcId` per arc,
/// grouped by source node in insertion order (stable counting sort). Shared
/// by [`RatioGraph::rebuild_adjacency`] and the solver's scratch CSR (which
/// serves graphs whose own index is stale).
pub(crate) fn build_csr(
    node_count: usize,
    arcs: &[Arc],
    offsets: &mut Vec<u32>,
    index: &mut Vec<ArcId>,
) {
    assert!(
        arcs.len() <= u32::MAX as usize,
        "arc count exceeds u32 range"
    );
    offsets.clear();
    offsets.resize(node_count + 1, 0);
    for arc in arcs {
        offsets[arc.from.0 + 1] += 1;
    }
    for node in 0..node_count {
        offsets[node + 1] += offsets[node];
    }
    index.clear();
    index.resize(arcs.len(), ArcId(0));
    // Place each arc at its node's running cursor, using `offsets[from]`
    // itself as the cursor; a reverse shift afterwards restores the starts.
    for (position, arc) in arcs.iter().enumerate() {
        let slot = offsets[arc.from.0] as usize;
        index[slot] = ArcId(position);
        offsets[arc.from.0] += 1;
    }
    // `offsets[v]` now holds the *end* of v's range; shift right to restore
    // the starts.
    for node in (1..=node_count).rev() {
        offsets[node] = offsets[node - 1];
    }
    offsets[0] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_adjacency() {
        let mut g = RatioGraph::new(2);
        let extra = g.add_node();
        assert_eq!(g.node_count(), 3);
        let a = g.node(0);
        let b = g.node(1);
        let e1 = g.add_arc(a, b, Rational::ONE, Rational::ONE);
        let e2 = g.add_arc(b, extra, Rational::from_integer(2), Rational::ZERO);
        assert_eq!(g.arc_count(), 2);
        assert!(!g.adjacency_current());
        g.rebuild_adjacency();
        assert!(g.adjacency_current());
        assert_eq!(g.outgoing(a), &[e1]);
        assert_eq!(g.outgoing(b), &[e2]);
        assert!(g.outgoing(extra).is_empty());
        assert_eq!(g.arc(e2).cost, Rational::from_integer(2));
        assert_eq!(g.nodes().count(), 3);
    }

    #[test]
    fn path_weight_sums_costs_and_times() {
        let mut g = RatioGraph::new(3);
        let e1 = g.add_arc(
            g.node(0),
            g.node(1),
            Rational::from_integer(1),
            Rational::new(1, 2).unwrap(),
        );
        let e2 = g.add_arc(
            g.node(1),
            g.node(2),
            Rational::from_integer(2),
            Rational::new(1, 3).unwrap(),
        );
        let (cost, time) = g.path_weight(&[e1, e2]).unwrap();
        assert_eq!(cost, Rational::from_integer(3));
        assert_eq!(time, Rational::new(5, 6).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let g = RatioGraph::new(1);
        let _ = g.node(5);
    }

    #[test]
    fn reset_keeps_capacity_and_restores_equality() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        let reference = g.clone();

        g.reset(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 0);
        assert!(g.outgoing(g.node(0)).is_empty());

        g.reset(2);
        g.reserve_arcs(2);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        assert_eq!(g, reference);
    }

    #[test]
    fn weight_patch_keeps_a_current_adjacency() {
        let mut g = RatioGraph::new(2);
        let e1 = g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        let e2 = g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        g.rebuild_adjacency();

        g.patch_arc_weights(e1, Rational::from_integer(7), Rational::ZERO);
        assert!(g.adjacency_current());
        assert_eq!(g.outgoing(g.node(0)), &[e1]);
        assert_eq!(g.arc(e1).cost, Rational::from_integer(7));
        assert_eq!(g.arc(e1).time, Rational::ZERO);

        // A weights patch on a *stale* index must not resurrect it.
        g.add_arc(g.node(0), g.node(0), Rational::ONE, Rational::ONE);
        assert!(!g.adjacency_current());
        g.patch_arc_weights(e2, Rational::from_integer(3), Rational::ONE);
        assert!(!g.adjacency_current());
    }

    #[test]
    fn endpoint_patch_goes_stale_and_matches_a_fresh_build() {
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        let e2 = g.add_arc(g.node(1), g.node(2), Rational::ONE, Rational::ONE);
        g.rebuild_adjacency();

        g.patch_arc(
            e2,
            g.node(2),
            g.node(0),
            Rational::from_integer(5),
            Rational::from_integer(2),
        );
        assert!(!g.adjacency_current());
        g.rebuild_adjacency();
        assert_eq!(g.outgoing(g.node(2)), &[e2]);
        assert!(g.outgoing(g.node(1)).is_empty());

        let mut fresh = RatioGraph::new(3);
        fresh.add_arc(fresh.node(0), fresh.node(1), Rational::ONE, Rational::ONE);
        fresh.add_arc(
            fresh.node(2),
            fresh.node(0),
            Rational::from_integer(5),
            Rational::from_integer(2),
        );
        assert_eq!(g, fresh);
    }

    #[test]
    fn adjacency_tracks_resets_even_at_equal_arc_counts() {
        // A reset followed by re-adding the same number of arcs must not be
        // mistaken for a current index (regression guard for the version
        // counter: plain arc-count comparison would be fooled here).
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), Rational::ONE, Rational::ONE);
        g.rebuild_adjacency();
        g.reset(2);
        g.add_arc(g.node(1), g.node(0), Rational::ONE, Rational::ONE);
        assert!(!g.adjacency_current());
        g.rebuild_adjacency();
        assert_eq!(g.outgoing(g.node(1)).len(), 1);
        assert!(g.outgoing(g.node(0)).is_empty());
    }
}
