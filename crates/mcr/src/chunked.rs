//! Intra-component chunked Howard kernels and the partitioned certifier.
//!
//! Per-SCC `thread::scope` parallelism (the [`crate::Solver`] worker pool) is
//! provably useless on event graphs that are one giant strongly connected
//! component — exactly the shape `scale_smoke` produces. This module
//! parallelizes *inside* a component while keeping **bit-identical output**
//! as the contract: every sweep is chunked over contiguous CSR row blocks,
//! and every place where the serial loop's visit order is observable is
//! either replayed serially (cheap, `O(n)`) or proven order-independent.
//!
//! Three pieces:
//!
//! * **Chunked policy evaluation** — the serial walk that discovers policy
//!   circuits, classifies them and assigns gains stays serial (it is `O(n)`
//!   pointer chasing), but records the exact order in which node values
//!   would be assigned. The per-node reduced weights (the `O(m)`
//!   multiply-heavy part) are then computed chunk-parallel, and a serial
//!   replay folds them into values in the recorded order, reproducing the
//!   serial kernel's overflow/`Bail` points exactly.
//! * **Chunked policy improvement** — the gain round is Gauss–Seidel (later
//!   nodes observe earlier commits), so a naive parallel round would diverge.
//!   Instead, a chunk-parallel *snapshot* pass computes every node's
//!   candidate, and a serial commit pass applies them in node order, marking
//!   the in-neighbours of every committed node dirty through a reverse CSR;
//!   dirty nodes rescan with live gains (the exact serial inner loop). Clean
//!   nodes provably see the same state the serial loop would, so the result
//!   is the serial result at any chunk width. The bias round reads only
//!   round-start gains/values and writes only the policy, so it is a pure
//!   snapshot pass: chunk-parallel candidates, serial order-preserving
//!   apply.
//! * **Partitioned Bellman–Ford** — the parametric certifier's relaxation
//!   runs level-synchronous (Jacobi) chunked over *target* nodes through the
//!   reverse CSR, which is deterministic at any width. When no violating
//!   circuit exists the fixpoint is unique, so converged distances equal the
//!   serial ones; on any sign of a violating circuit (or arithmetic
//!   overflow) the partial state is discarded and the serial pass re-runs
//!   from scratch, so the extracted circuit — and therefore the whole
//!   λ-trajectory — is exactly the serial one.
//!
//! The integer kernel additionally gets a **fast lane**: after scaling, if
//! every `|L̂|, |Ĥ| ≤ 2^62 / n`, then every downstream product and
//! telescoped sum provably fits `i128` (circuit sums ≤ `n·B`, gains ≤ `n·B`,
//! reduced weights ≤ `2n·B²`, values ≤ `2n²·B²`, comparisons ≤ `4n²·B²`
//! `< 2^127`), so the sweeps run unchecked arithmetic — same values, no
//! overflow branches — and the gain round can skip whole row scans for
//! nodes already at the round-start maximum gain (a strictly greater gain
//! cannot exist within the round, since gain rounds only copy existing
//! gains).
//!
//! Cancellation is polled per chunk and every [`CANCEL_STRIDE`] nodes within
//! a chunk; a latched token makes early detection output-equivalent to the
//! serial per-round poll (the solve ends in `McrError::Cancelled` either
//! way).

use csdf::{gcd_i128, Rational};

use crate::cancel::CancelToken;
use crate::graph::RatioGraph;
use crate::howard::{policy_cycle_from, HowardOutcome};
use crate::solve::{find_violating_cycle, lex_greater, McrError, Scratch};

/// Poll the cancellation token at least every this many nodes inside a chunk
/// (in addition to once per chunk), so one huge sweep cannot blow past a
/// deadline.
pub(crate) const CANCEL_STRIDE: usize = 4096;

/// High bit of an `order` entry: the node is a circuit anchor (value zero).
const ANCHOR_BIT: u32 = 1 << 31;

/// Intra-component parallelism decided per component by the solver layer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntraOpts {
    /// Number of contiguous chunks each sweep is split into (`>= 2` selects
    /// the chunked code path; `1` is the serial pre-existing path).
    pub(crate) workers: usize,
    /// Whether chunks actually run on `thread::scope` workers. With `false`
    /// the chunks run inline on the calling thread — same code, same
    /// results, no spawn overhead (used when the host has fewer cores than
    /// requested workers).
    pub(crate) spawn: bool,
}

impl IntraOpts {
    pub(crate) const SERIAL: IntraOpts = IntraOpts {
        workers: 1,
        spawn: false,
    };
}

/// Runs `f` over contiguous chunks of `data`, either on scoped worker
/// threads (`spawn`) or inline. `f` receives the chunk's base index and the
/// chunk slice. The chunk decomposition depends only on `workers` and
/// `data.len()`, never on scheduling.
fn for_chunks<T, F>(workers: usize, spawn: bool, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let workers = workers.clamp(1, len);
    let chunk = len.div_ceil(workers);
    if !spawn || workers <= 1 {
        let mut rest = data;
        let mut base = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            f(base, head);
            base += take;
            rest = tail;
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut base = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            if tail.is_empty() {
                // Last chunk on the calling thread.
                f(base, head);
            } else {
                scope.spawn(move || f(base, head));
            }
            base += take;
            rest = tail;
        }
    });
}

/// Like [`for_chunks`] but over two equal-length output slices split at the
/// same boundaries (`f(base, a_chunk, b_chunk)`).
fn for_chunks2<A, B, F>(workers: usize, spawn: bool, a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    let len = a.len();
    debug_assert_eq!(len, b.len());
    if len == 0 {
        return;
    }
    let workers = workers.clamp(1, len);
    let chunk = len.div_ceil(workers);
    if !spawn || workers <= 1 {
        let (mut rest_a, mut rest_b) = (a, b);
        let mut base = 0;
        while !rest_a.is_empty() {
            let take = chunk.min(rest_a.len());
            let (head_a, tail_a) = std::mem::take(&mut rest_a).split_at_mut(take);
            let (head_b, tail_b) = std::mem::take(&mut rest_b).split_at_mut(take);
            f(base, head_a, head_b);
            base += take;
            rest_a = tail_a;
            rest_b = tail_b;
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rest_a, mut rest_b) = (a, b);
        let mut base = 0;
        while !rest_a.is_empty() {
            let take = chunk.min(rest_a.len());
            let (head_a, tail_a) = std::mem::take(&mut rest_a).split_at_mut(take);
            let (head_b, tail_b) = std::mem::take(&mut rest_b).split_at_mut(take);
            if tail_a.is_empty() {
                f(base, head_a, head_b);
            } else {
                scope.spawn(move || f(base, head_a, head_b));
            }
            base += take;
            rest_a = tail_a;
            rest_b = tail_b;
        }
    });
}

/// Per-node reduced weight computed by the chunked evaluation pass.
#[derive(Debug, Clone, Copy)]
struct IntSlot {
    w: i128,
    err: bool,
}

#[derive(Debug, Clone, Copy)]
struct RatSlot {
    w: Rational,
    err: bool,
}

/// Per-node candidate of a chunked improvement pass.
#[derive(Debug, Clone, Copy)]
struct IntCand {
    pos: usize,
    node: u32,
    skip: bool,
    err: bool,
}

#[derive(Debug, Clone, Copy)]
struct RatCand {
    pos: usize,
    gain: Rational,
    err: bool,
}

/// Reusable buffers for the chunked kernels, owned by [`Scratch`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkScratch {
    /// Value-assignment order recorded by evaluation pass 0 (node index, with
    /// [`ANCHOR_BIT`] set on circuit anchors).
    order: Vec<u32>,
    wslot_int: Vec<IntSlot>,
    wslot_rat: Vec<RatSlot>,
    cand_int: Vec<IntCand>,
    cand_rat: Vec<RatCand>,
    /// Gauss–Seidel dirty marks for the commit pass (stamped).
    dirty: Vec<u64>,
    dirty_epoch: u64,
    /// Reverse CSR of the component: `rev_pos[rev_first[t]..rev_first[t+1]]`
    /// are the arc positions *into* node `t`, ascending.
    rev_first: Vec<u32>,
    rev_pos: Vec<u32>,
    rev_cursor: Vec<u32>,
    /// Component epoch the reverse CSR was built for.
    rev_epoch: u64,
    // Partitioned Bellman–Ford double buffer.
    bf_next: Vec<(Rational, Rational)>,
    /// Per target and round: 0 unchanged, 1 improved, 2 overflow.
    bf_status: Vec<u8>,
    bf_active: Vec<bool>,
}

/// Builds (or reuses) the reverse CSR of the current component view.
fn ensure_rev_csr(scratch: &mut Scratch, n: usize, m: usize) {
    if scratch.chunk.rev_epoch == scratch.component_epoch {
        return;
    }
    let arc_to = &scratch.arc_to;
    let chunk = &mut scratch.chunk;
    chunk.rev_first.clear();
    chunk.rev_first.resize(n + 1, 0);
    for &to in &arc_to[..m] {
        chunk.rev_first[to as usize + 1] += 1;
    }
    for t in 0..n {
        chunk.rev_first[t + 1] += chunk.rev_first[t];
    }
    chunk.rev_cursor.clear();
    chunk.rev_cursor.extend_from_slice(&chunk.rev_first[..n]);
    chunk.rev_pos.clear();
    chunk.rev_pos.resize(m, 0);
    for (pos, &to) in arc_to[..m].iter().enumerate() {
        let t = to as usize;
        chunk.rev_pos[chunk.rev_cursor[t] as usize] = u32::try_from(pos).expect("m fits u32");
        chunk.rev_cursor[t] += 1;
    }
    chunk.rev_epoch = scratch.component_epoch;
}

enum Evaluation {
    Done,
    Infinite(Vec<usize>),
    Bail,
}

enum ImproveResult {
    Changed,
    Stable,
    Cancelled,
}

// ---------------------------------------------------------------------------
// Integer kernel, chunked.
// ---------------------------------------------------------------------------

/// Chunked integer Howard kernel. Bit-identical to
/// [`crate::kernel::howard_component_int`] (including every `None` fallback
/// point); `None` means the caller loads the scalar component view and runs
/// the scalar kernel. Reads arc costs/times straight from `graph` through
/// the component's `arc_id` map, so the component view may be loaded *lean*
/// (without the per-arc `Rational` copies).
pub(crate) fn howard_component_int_chunked(
    graph: &RatioGraph,
    scratch: &mut Scratch,
    n: usize,
    intra: IntraOpts,
) -> Option<HowardOutcome> {
    let m = scratch.arc_len();
    if m == 0 {
        return Some(HowardOutcome::Bail);
    }
    let scaled = scale_component_int(graph, scratch)?;
    let (den_cost, den_time) = (scaled.den_cost, scaled.den_time);

    if scratch.int_gain_num.len() < n {
        scratch.int_gain_num.resize(n, 0);
        scratch.int_gain_den.resize(n, 1);
        scratch.int_value.resize(n, 0);
    }
    if scratch.policy.len() < n {
        scratch.policy.resize(n, 0);
    }
    for node in 0..n {
        if scratch.first[node] == scratch.first[node + 1] {
            return Some(HowardOutcome::Bail);
        }
        scratch.policy[node] = scratch.first[node];
    }
    let costs_nonneg = scaled.costs_nonneg;

    // Fast lane: with every scaled magnitude below 2^62 / n, all downstream
    // sums/products provably fit i128 (see module docs), so the sweeps run
    // unchecked arithmetic and compute the same values the checked serial
    // kernel would.
    let fast = scaled.max_abs <= (1i128 << 62) / (n as i128);
    ensure_rev_csr(scratch, n, m);

    let budget = 2 * n + 64;
    let mut converged = false;
    for _ in 0..budget {
        if scratch.cancel.is_cancelled() {
            return Some(HowardOutcome::Bail);
        }
        match evaluate_int_chunked(scratch, n, fast, intra)? {
            Evaluation::Done => {}
            Evaluation::Infinite(positions) => return Some(HowardOutcome::Infinite { positions }),
            Evaluation::Bail => return Some(HowardOutcome::Bail),
        }
        match improve_int_chunked(scratch, n, fast, intra)? {
            ImproveResult::Changed => {}
            ImproveResult::Stable => {
                converged = true;
                break;
            }
            ImproveResult::Cancelled => return Some(HowardOutcome::Bail),
        }
    }
    if !converged {
        return Some(HowardOutcome::Bail);
    }

    // Final extraction: identical (serial, checked) to the serial kernel.
    let mut best_node = 0usize;
    for node in 1..n {
        if cmp_gain(scratch, node, best_node)? != std::cmp::Ordering::Less {
            best_node = node;
        }
    }
    if scratch.int_gain_num[best_node] <= 0 {
        return Some(HowardOutcome::Bail);
    }
    let gain = Rational::new(
        scratch.int_gain_num[best_node],
        scratch.int_gain_den[best_node],
    )
    .expect("gain denominator is positive");
    let scaling = Rational::new(den_time, den_cost).expect("common denominators are positive");
    let lambda = gain.checked_mul(&scaling).ok()?;
    let positions = policy_cycle_from(scratch, best_node);
    if costs_nonneg && (0..n).all(|node| scratch.int_gain_num[node] > 0) {
        Some(HowardOutcome::Certified { lambda, positions })
    } else {
        Some(HowardOutcome::Estimate { lambda, positions })
    }
}

/// The component scaled onto `i128` numerators, plus the facts the kernel
/// entry needs that would otherwise cost extra full passes over the arrays.
struct ScaledComponent {
    den_cost: i128,
    den_time: i128,
    /// Every scaled cost is non-negative (certification precondition).
    costs_nonneg: bool,
    /// Maximum absolute scaled magnitude, for the fast-lane bound.
    max_abs: i128,
}

/// Common denominators + scaling of the component onto `i128` numerators,
/// reading the arc values from `graph` (the component view may be lean).
/// Same values as `kernel::common_denominators` + `scale_arcs`, computed in
/// a single pass: arcs are scaled under the *running* lcm, and whenever a
/// later arc grows it, the already-written prefix is rescaled by the growth
/// factor (lcm is monotone, so prefix magnitudes only go up and an overflow
/// in either step implies the final value overflows too). Event-graph arcs
/// share a handful of denominators in long runs, so a one-entry scale memo
/// skips almost every `i128` division, and `mul_scale` keeps the multiplies
/// in native `i64` where they fit.
fn scale_component_int(graph: &RatioGraph, scratch: &mut Scratch) -> Option<ScaledComponent> {
    let m = scratch.arc_id.len();
    scratch.int_cost.clear();
    scratch.int_time.clear();
    scratch.int_cost.reserve(m);
    scratch.int_time.reserve(m);
    let mut den_cost: i128 = 1;
    let mut den_time: i128 = 1;
    // (index where the previous lcm stopped applying, lcm used before that).
    let mut cost_upgrades: Vec<(usize, i128)> = Vec::new();
    let mut time_upgrades: Vec<(usize, i128)> = Vec::new();
    // One-entry scale memos, reset on every lcm upgrade: arcs arrive in
    // buffer/block order, so runs of consecutive arcs share a denominator.
    let mut memo_cost = (1i128, 1i128);
    let mut memo_time = (1i128, 1i128);
    let mut costs_nonneg = true;
    let mut max_abs: i128 = 0;
    for (index, &arc_id) in scratch.arc_id.iter().enumerate() {
        let arc = graph.arc(arc_id);
        let cost_den = arc.cost.denom();
        if cost_den != memo_cost.0 {
            if den_cost % cost_den != 0 {
                let grown = lcm_i128(den_cost, cost_den)?;
                cost_upgrades.push((index, den_cost));
                den_cost = grown;
            }
            memo_cost = (cost_den, den_cost / cost_den);
        }
        let cost = mul_scale(arc.cost.numer(), memo_cost.1)?;
        costs_nonneg &= cost >= 0;
        max_abs = max_abs.max(abs_i128(cost));
        scratch.int_cost.push(cost);
        let time_den = arc.time.denom();
        if time_den != memo_time.0 {
            if den_time % time_den != 0 {
                let grown = lcm_i128(den_time, time_den)?;
                time_upgrades.push((index, den_time));
                den_time = grown;
            }
            memo_time = (time_den, den_time / time_den);
        }
        let time = mul_scale(arc.time.numer(), memo_time.1)?;
        max_abs = max_abs.max(abs_i128(time));
        scratch.int_time.push(time);
    }
    // Rescale the prefixes written under a smaller lcm, walking the upgrades
    // forward: entry `j` brings `values[..end_j]` from its recorded lcm up to
    // the next entry's (or the final) lcm, so before entry `j + 1` runs, the
    // whole prefix below `end_{j+1}` is uniformly under that entry's lcm.
    for (upgrades, values, den) in [
        (&cost_upgrades, &mut scratch.int_cost, den_cost),
        (&time_upgrades, &mut scratch.int_time, den_time),
    ] {
        for (j, &(end, used)) in upgrades.iter().enumerate() {
            let target = upgrades.get(j + 1).map_or(den, |&(_, next)| next);
            let factor = target / used;
            if factor == 1 {
                continue;
            }
            for value in &mut values[..end] {
                *value = mul_scale(*value, factor)?;
                max_abs = max_abs.max(abs_i128(*value));
            }
        }
    }
    Some(ScaledComponent {
        den_cost,
        den_time,
        costs_nonneg,
        max_abs,
    })
}

/// `value.unsigned_abs()` clamped back into `i128` (saturating on the
/// `i128::MIN` edge, which only makes the fast-lane bound more conservative).
#[inline]
fn abs_i128(value: i128) -> i128 {
    i128::try_from(value.unsigned_abs()).unwrap_or(i128::MAX)
}

/// `numer * scale` with overflow reported as `None`. Exactly
/// `numer.checked_mul(scale)`, but the common all-small case runs a native
/// `i64` multiply instead of the much slower `i128` overflow-checked one; an
/// `i64` overflow falls back to the `i128` check, so results are identical.
#[inline]
fn mul_scale(numer: i128, scale: i128) -> Option<i128> {
    if scale == 1 {
        return Some(numer);
    }
    if let (Ok(a), Ok(b)) = (i64::try_from(numer), i64::try_from(scale)) {
        if let Some(product) = a.checked_mul(b) {
            return Some(i128::from(product));
        }
    }
    numer.checked_mul(scale)
}

fn lcm_i128(a: i128, b: i128) -> Option<i128> {
    debug_assert!(a > 0 && b > 0);
    let g = gcd_i128(a, b);
    (a / g).checked_mul(b)
}

fn cmp_gain(scratch: &Scratch, a: usize, b: usize) -> Option<std::cmp::Ordering> {
    let lhs = scratch.int_gain_num[a].checked_mul(scratch.int_gain_den[b])?;
    let rhs = scratch.int_gain_num[b].checked_mul(scratch.int_gain_den[a])?;
    Some(lhs.cmp(&rhs))
}

/// Chunked integer policy evaluation. Pass 0 (serial) walks the policy graph
/// exactly like `kernel::evaluate_int` — circuit discovery, classification,
/// gain assignment — but defers node values, recording the assignment order.
/// Pass 1 computes the per-node reduced weights chunk-parallel; pass 2
/// replays the values serially in the recorded order, reproducing the serial
/// kernel's exact overflow points (`None` ⇒ scalar fallback).
fn evaluate_int_chunked(
    scratch: &mut Scratch,
    n: usize,
    fast: bool,
    intra: IntraOpts,
) -> Option<Evaluation> {
    scratch.epoch += 2;
    let on_walk = scratch.epoch - 1;
    let resolved = scratch.epoch;
    let Scratch {
        arc_to,
        policy,
        int_cost,
        int_time,
        int_gain_num,
        int_gain_den,
        int_value,
        mark,
        mark_pos,
        resolved: resolved_stamp,
        walk,
        chunk,
        cancel,
        ..
    } = scratch;

    // Pass 0: serial discovery/classification, values deferred.
    chunk.order.clear();
    let mut pending: Option<Evaluation> = None;
    'starts: for start in 0..n {
        if resolved_stamp[start] == resolved {
            continue;
        }
        walk.clear();
        let mut current = start;
        while resolved_stamp[current] != resolved && mark[current] != on_walk {
            mark[current] = on_walk;
            mark_pos[current] = walk.len();
            walk.push(current);
            current = arc_to[policy[current]] as usize;
        }
        let tree_top = if resolved_stamp[current] == resolved {
            walk.len()
        } else {
            let p = mark_pos[current];
            let mut cost: i128 = 0;
            let mut time: i128 = 0;
            if fast {
                for &node in &walk[p..] {
                    let position = policy[node];
                    cost += int_cost[position];
                    time += int_time[position];
                }
            } else {
                for &node in &walk[p..] {
                    let position = policy[node];
                    cost = cost.checked_add(int_cost[position])?;
                    time = time.checked_add(int_time[position])?;
                }
            }
            if time <= 0 {
                pending = Some(if cost > 0 || (cost == 0 && time < 0) {
                    Evaluation::Infinite(walk[p..].iter().map(|&node| policy[node]).collect())
                } else {
                    Evaluation::Bail
                });
                break 'starts;
            }
            let g = gcd_i128(cost, time);
            let (num, den) = if g > 1 {
                (cost / g, time / g)
            } else {
                (cost, time)
            };
            let anchor = walk[p];
            int_gain_num[anchor] = num;
            int_gain_den[anchor] = den;
            resolved_stamp[anchor] = resolved;
            chunk.order.push(anchor as u32 | ANCHOR_BIT);
            for walk_index in (p + 1..walk.len()).rev() {
                let node = walk[walk_index];
                int_gain_num[node] = num;
                int_gain_den[node] = den;
                resolved_stamp[node] = resolved;
                chunk.order.push(node as u32);
            }
            p
        };
        for walk_index in (0..tree_top).rev() {
            let node = walk[walk_index];
            let successor = arc_to[policy[node]] as usize;
            debug_assert_eq!(resolved_stamp[successor], resolved);
            int_gain_num[node] = int_gain_num[successor];
            int_gain_den[node] = int_gain_den[successor];
            resolved_stamp[node] = resolved;
            chunk.order.push(node as u32);
        }
    }

    // In the fast lane no value arithmetic can fail, so with a pending
    // classification the values are dead — skip them. The checked lane must
    // compute them to reproduce the serial kernel's overflow-fallback points
    // (an earlier walk's value overflow takes precedence over a later walk's
    // classification, because the serial kernel evaluates walks completely
    // in order).
    if fast {
        if let Some(pending) = pending {
            return Some(pending);
        }
    }

    // Pass 1: chunk-parallel reduced weights, aligned with `order`.
    let order: &[u32] = &chunk.order;
    let len = order.len();
    chunk.wslot_int.clear();
    chunk.wslot_int.resize(len, IntSlot { w: 0, err: false });
    {
        let policy: &[usize] = policy;
        let int_cost: &[i128] = int_cost;
        let int_time: &[i128] = int_time;
        let int_gain_num: &[i128] = int_gain_num;
        let int_gain_den: &[i128] = int_gain_den;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.wslot_int,
            |base, out| {
                for (i, slot) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let entry = order[base + i];
                    if entry & ANCHOR_BIT != 0 {
                        continue;
                    }
                    let node = entry as usize;
                    let position = policy[node];
                    let (num, den) = (int_gain_num[node], int_gain_den[node]);
                    if fast {
                        slot.w = int_cost[position] * den - num * int_time[position];
                    } else {
                        match int_cost[position].checked_mul(den).and_then(|cd| {
                            num.checked_mul(int_time[position])
                                .and_then(|nt| cd.checked_sub(nt))
                        }) {
                            Some(w) => slot.w = w,
                            None => slot.err = true,
                        }
                    }
                }
            },
        );
    }
    if cancel.is_cancelled() {
        // Output-equivalent to the serial kernel noticing the (latched)
        // token at the next round boundary.
        return Some(Evaluation::Bail);
    }

    // Pass 2: serial replay in recorded order.
    for (i, &entry) in order.iter().enumerate() {
        let node = (entry & !ANCHOR_BIT) as usize;
        if entry & ANCHOR_BIT != 0 {
            int_value[node] = 0;
            continue;
        }
        let slot = chunk.wslot_int[i];
        if slot.err {
            return None;
        }
        let successor = arc_to[policy[node]] as usize;
        int_value[node] = if fast {
            slot.w + int_value[successor]
        } else {
            slot.w.checked_add(int_value[successor])?
        };
    }
    Some(pending.unwrap_or(Evaluation::Done))
}

/// Chunked integer policy improvement: snapshot pass (parallel) + serial
/// Gauss–Seidel commit pass with reverse-CSR dirty marking for the gain
/// round; pure snapshot pass for the bias round. `None` has the serial
/// meaning (overflow ⇒ scalar fallback).
fn improve_int_chunked(
    scratch: &mut Scratch,
    n: usize,
    fast: bool,
    intra: IntraOpts,
) -> Option<ImproveResult> {
    let Scratch {
        arc_from,
        arc_to,
        first,
        policy,
        int_cost,
        int_time,
        int_gain_num,
        int_gain_den,
        int_value,
        chunk,
        cancel,
        ..
    } = scratch;

    // Round-start maximum gain (fast lane): gain rounds only copy existing
    // gains, so a node already at the maximum cannot strictly improve — its
    // whole row scan is skipped. Canonical pairs make the equality test two
    // integer compares.
    let mut max_num = int_gain_num[0];
    let mut max_den = int_gain_den[0];
    if fast {
        for node in 1..n {
            if int_gain_num[node] * max_den > max_num * int_gain_den[node] {
                max_num = int_gain_num[node];
                max_den = int_gain_den[node];
            }
        }
    }

    // Gain round, phase A: chunk-parallel snapshot candidates.
    chunk.cand_int.clear();
    chunk.cand_int.resize(
        n,
        IntCand {
            pos: 0,
            node: 0,
            skip: false,
            err: false,
        },
    );
    {
        let policy: &[usize] = policy;
        let arc_to: &[u32] = arc_to;
        let first: &[usize] = first;
        let int_gain_num: &[i128] = int_gain_num;
        let int_gain_den: &[i128] = int_gain_den;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.cand_int,
            |base, out| {
                for (i, cand) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let node = base + i;
                    if fast && int_gain_num[node] == max_num && int_gain_den[node] == max_den {
                        cand.skip = true;
                        continue;
                    }
                    let mut best = node;
                    let mut best_pos = policy[node];
                    let (lo, hi) = (first[node], first[node + 1]);
                    for (position, &to) in (lo..hi).zip(&arc_to[lo..hi]) {
                        let target = to as usize;
                        if fast {
                            if int_gain_num[target] * int_gain_den[best]
                                > int_gain_num[best] * int_gain_den[target]
                            {
                                best = target;
                                best_pos = position;
                            }
                        } else {
                            let lhs = int_gain_num[target].checked_mul(int_gain_den[best]);
                            let rhs = int_gain_num[best].checked_mul(int_gain_den[target]);
                            match (lhs, rhs) {
                                (Some(lhs), Some(rhs)) => {
                                    if lhs > rhs {
                                        best = target;
                                        best_pos = position;
                                    }
                                }
                                _ => {
                                    cand.err = true;
                                    break;
                                }
                            }
                        }
                    }
                    cand.node = u32::try_from(best).expect("n fits u32");
                    cand.pos = best_pos;
                }
            },
        );
    }
    if cancel.is_cancelled() {
        return Some(ImproveResult::Cancelled);
    }

    // Gain round, phase B: serial commit in node order. A committed gain
    // change invalidates the snapshot of every in-neighbour; those rescan
    // with live gains (the exact serial inner loop), so the pass reproduces
    // the serial Gauss–Seidel trajectory bit for bit.
    chunk.dirty_epoch += 1;
    let depoch = chunk.dirty_epoch;
    if chunk.dirty.len() < n {
        chunk.dirty.resize(n, 0);
    }
    let mut changed = false;
    for node in 0..n {
        if node % CANCEL_STRIDE == 0 && node > 0 && cancel.is_cancelled() {
            return Some(ImproveResult::Cancelled);
        }
        let cand = chunk.cand_int[node];
        if cand.skip {
            continue;
        }
        let (best, best_pos) = if chunk.dirty[node] == depoch {
            // Rescan with current gains — identical to the serial loop body.
            let mut best = node;
            let mut best_pos = policy[node];
            let (lo, hi) = (first[node], first[node + 1]);
            for (position, &to) in (lo..hi).zip(&arc_to[lo..hi]) {
                let target = to as usize;
                if fast {
                    if int_gain_num[target] * int_gain_den[best]
                        > int_gain_num[best] * int_gain_den[target]
                    {
                        best = target;
                        best_pos = position;
                    }
                } else {
                    let lhs = int_gain_num[target].checked_mul(int_gain_den[best])?;
                    let rhs = int_gain_num[best].checked_mul(int_gain_den[target])?;
                    if lhs > rhs {
                        best = target;
                        best_pos = position;
                    }
                }
            }
            (best, best_pos)
        } else {
            if cand.err {
                // The serial loop would compute the same products at this
                // node (its targets' gains are unchanged) and overflow too.
                return None;
            }
            (cand.node as usize, cand.pos)
        };
        let commit = if fast {
            int_gain_num[best] * int_gain_den[node] > int_gain_num[node] * int_gain_den[best]
        } else {
            let lhs = int_gain_num[best].checked_mul(int_gain_den[node])?;
            let rhs = int_gain_num[node].checked_mul(int_gain_den[best])?;
            lhs > rhs
        };
        if commit {
            policy[node] = best_pos;
            int_gain_num[node] = int_gain_num[best];
            int_gain_den[node] = int_gain_den[best];
            changed = true;
            for r in chunk.rev_first[node] as usize..chunk.rev_first[node + 1] as usize {
                let src = arc_from[chunk.rev_pos[r] as usize] as usize;
                chunk.dirty[src] = depoch;
            }
        }
    }
    if changed {
        return Some(ImproveResult::Changed);
    }

    // Bias round: reads only round-start gains/values, writes only the
    // policy — a pure snapshot pass. Chunk-parallel candidates, serial
    // order-preserving apply (the first overflow in node order aborts, like
    // the serial loop).
    {
        let arc_to: &[u32] = arc_to;
        let first: &[usize] = first;
        let int_cost: &[i128] = int_cost;
        let int_time: &[i128] = int_time;
        let int_gain_num: &[i128] = int_gain_num;
        let int_gain_den: &[i128] = int_gain_den;
        let int_value: &[i128] = int_value;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.cand_int,
            |base, out| {
                for (i, cand) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let node = base + i;
                    let num = int_gain_num[node];
                    let den = int_gain_den[node];
                    let mut best_pos = usize::MAX;
                    let mut best_value = int_value[node];
                    cand.err = false;
                    for position in first[node]..first[node + 1] {
                        let target = arc_to[position] as usize;
                        if int_gain_num[target] != num || int_gain_den[target] != den {
                            continue;
                        }
                        let candidate = if fast {
                            int_cost[position] * den - num * int_time[position] + int_value[target]
                        } else {
                            let weight = int_cost[position].checked_mul(den).and_then(|cd| {
                                num.checked_mul(int_time[position])
                                    .and_then(|nt| cd.checked_sub(nt))
                            });
                            match weight.and_then(|w| w.checked_add(int_value[target])) {
                                Some(candidate) => candidate,
                                None => {
                                    cand.err = true;
                                    break;
                                }
                            }
                        };
                        if candidate > best_value {
                            best_value = candidate;
                            best_pos = position;
                        }
                    }
                    cand.pos = best_pos;
                }
            },
        );
    }
    if cancel.is_cancelled() {
        return Some(ImproveResult::Cancelled);
    }
    for (node, slot) in policy.iter_mut().enumerate().take(n) {
        let cand = chunk.cand_int[node];
        if cand.err {
            return None;
        }
        if cand.pos != usize::MAX {
            *slot = cand.pos;
            changed = true;
        }
    }
    Some(if changed {
        ImproveResult::Changed
    } else {
        ImproveResult::Stable
    })
}

// ---------------------------------------------------------------------------
// Scalar kernel, chunked.
// ---------------------------------------------------------------------------

/// Chunked scalar Howard kernel; bit-identical to
/// [`crate::howard::howard_component`]. Requires the rational component view
/// (`Scratch::ensure_component_rationals`).
pub(crate) fn howard_component_chunked(
    scratch: &mut Scratch,
    n: usize,
    intra: IntraOpts,
) -> HowardOutcome {
    if scratch.arc_len() == 0 {
        return HowardOutcome::Bail;
    }
    if scratch.policy.len() < n {
        scratch.policy.resize(n, 0);
    }
    if scratch.gain.len() < n {
        scratch.gain.resize(n, Rational::ZERO);
        scratch.value.resize(n, Rational::ZERO);
    }
    for node in 0..n {
        if scratch.first[node] == scratch.first[node + 1] {
            return HowardOutcome::Bail;
        }
        scratch.policy[node] = scratch.first[node];
    }
    let costs_nonneg = scratch.arc_cost.iter().all(|cost| !cost.is_negative());
    ensure_rev_csr(scratch, n, scratch.arc_len());

    let budget = 2 * n + 64;
    let mut converged = false;
    for _ in 0..budget {
        if scratch.cancel.is_cancelled() {
            return HowardOutcome::Bail;
        }
        match evaluate_chunked(scratch, n, intra) {
            Evaluation::Done => {}
            Evaluation::Infinite(positions) => return HowardOutcome::Infinite { positions },
            Evaluation::Bail => return HowardOutcome::Bail,
        }
        match improve_chunked(scratch, n, intra) {
            Some(ImproveResult::Changed) => {}
            Some(ImproveResult::Stable) => {
                converged = true;
                break;
            }
            Some(ImproveResult::Cancelled) | None => return HowardOutcome::Bail,
        }
    }
    if !converged {
        return HowardOutcome::Bail;
    }

    let best_node = (0..n)
        .max_by(|&a, &b| scratch.gain[a].cmp(&scratch.gain[b]))
        .expect("component has at least one node");
    let lambda = scratch.gain[best_node];
    if !lambda.is_positive() {
        return HowardOutcome::Bail;
    }
    let positions = policy_cycle_from(scratch, best_node);
    if costs_nonneg && (0..n).all(|node| scratch.gain[node].is_positive()) {
        HowardOutcome::Certified { lambda, positions }
    } else {
        HowardOutcome::Estimate { lambda, positions }
    }
}

fn evaluate_chunked(scratch: &mut Scratch, n: usize, intra: IntraOpts) -> Evaluation {
    scratch.epoch += 2;
    let on_walk = scratch.epoch - 1;
    let resolved = scratch.epoch;
    let Scratch {
        arc_to,
        arc_cost,
        arc_time,
        policy,
        gain,
        value,
        mark,
        mark_pos,
        resolved: resolved_stamp,
        walk,
        chunk,
        cancel,
        ..
    } = scratch;

    // Pass 0: serial discovery/classification, values deferred.
    chunk.order.clear();
    let mut pending: Option<Evaluation> = None;
    'starts: for start in 0..n {
        if resolved_stamp[start] == resolved {
            continue;
        }
        walk.clear();
        let mut current = start;
        while resolved_stamp[current] != resolved && mark[current] != on_walk {
            mark[current] = on_walk;
            mark_pos[current] = walk.len();
            walk.push(current);
            current = arc_to[policy[current]] as usize;
        }
        let tree_top = if resolved_stamp[current] == resolved {
            walk.len()
        } else {
            let p = mark_pos[current];
            let mut cost_sum = csdf::RationalSum::new();
            let mut time_sum = csdf::RationalSum::new();
            for &node in &walk[p..] {
                let position = policy[node];
                if cost_sum.add(&arc_cost[position]).is_err()
                    || time_sum.add(&arc_time[position]).is_err()
                {
                    pending = Some(Evaluation::Bail);
                    break 'starts;
                }
            }
            let cost = cost_sum.finish();
            let time = time_sum.finish();
            if !time.is_positive() {
                pending = Some(
                    if cost.is_positive() || (cost.is_zero() && time.is_negative()) {
                        Evaluation::Infinite(walk[p..].iter().map(|&node| policy[node]).collect())
                    } else {
                        Evaluation::Bail
                    },
                );
                break 'starts;
            }
            let Ok(circuit_gain) = cost.checked_div(&time) else {
                pending = Some(Evaluation::Bail);
                break 'starts;
            };
            let anchor = walk[p];
            gain[anchor] = circuit_gain;
            resolved_stamp[anchor] = resolved;
            chunk.order.push(anchor as u32 | ANCHOR_BIT);
            for walk_index in (p + 1..walk.len()).rev() {
                let node = walk[walk_index];
                gain[node] = circuit_gain;
                resolved_stamp[node] = resolved;
                chunk.order.push(node as u32);
            }
            p
        };
        for walk_index in (0..tree_top).rev() {
            let node = walk[walk_index];
            let successor = arc_to[policy[node]] as usize;
            debug_assert_eq!(resolved_stamp[successor], resolved);
            gain[node] = gain[successor];
            resolved_stamp[node] = resolved;
            chunk.order.push(node as u32);
        }
    }

    // Pass 1: chunk-parallel reduced weights. Every failure mode of the
    // scalar kernel maps to Bail, so the replay's first poisoned node in
    // assignment order reproduces the serial Bail point exactly.
    let order: &[u32] = &chunk.order;
    let len = order.len();
    chunk.wslot_rat.clear();
    chunk.wslot_rat.resize(
        len,
        RatSlot {
            w: Rational::ZERO,
            err: false,
        },
    );
    {
        let policy: &[usize] = policy;
        let arc_cost: &[Rational] = arc_cost;
        let arc_time: &[Rational] = arc_time;
        let gain: &[Rational] = gain;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.wslot_rat,
            |base, out| {
                for (i, slot) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let entry = order[base + i];
                    if entry & ANCHOR_BIT != 0 {
                        continue;
                    }
                    let node = entry as usize;
                    let position = policy[node];
                    match gain[node]
                        .checked_mul(&arc_time[position])
                        .and_then(|scaled| arc_cost[position].checked_sub(&scaled))
                    {
                        Ok(w) => slot.w = w,
                        Err(_) => slot.err = true,
                    }
                }
            },
        );
    }
    if cancel.is_cancelled() {
        return Evaluation::Bail;
    }

    // Pass 2: serial replay.
    for (i, &entry) in order.iter().enumerate() {
        let node = (entry & !ANCHOR_BIT) as usize;
        if entry & ANCHOR_BIT != 0 {
            value[node] = Rational::ZERO;
            continue;
        }
        let slot = chunk.wslot_rat[i];
        if slot.err {
            return Evaluation::Bail;
        }
        let successor = arc_to[policy[node]] as usize;
        let Ok(v) = slot.w.checked_add(&value[successor]) else {
            return Evaluation::Bail;
        };
        value[node] = v;
    }
    pending.unwrap_or(Evaluation::Done)
}

fn improve_chunked(scratch: &mut Scratch, n: usize, intra: IntraOpts) -> Option<ImproveResult> {
    let Scratch {
        arc_from,
        arc_to,
        arc_cost,
        arc_time,
        first,
        policy,
        gain,
        value,
        chunk,
        cancel,
        ..
    } = scratch;

    // Gain round, phase A: snapshot candidates (total order, no failures).
    chunk.cand_rat.clear();
    chunk.cand_rat.resize(
        n,
        RatCand {
            pos: 0,
            gain: Rational::ZERO,
            err: false,
        },
    );
    {
        let policy: &[usize] = policy;
        let arc_to: &[u32] = arc_to;
        let first: &[usize] = first;
        let gain: &[Rational] = gain;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.cand_rat,
            |base, out| {
                for (i, cand) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let node = base + i;
                    let mut best_pos = policy[node];
                    let mut best_gain = gain[node];
                    let (lo, hi) = (first[node], first[node + 1]);
                    for (position, &to) in (lo..hi).zip(&arc_to[lo..hi]) {
                        let target = to as usize;
                        if gain[target] > best_gain {
                            best_gain = gain[target];
                            best_pos = position;
                        }
                    }
                    cand.pos = best_pos;
                    cand.gain = best_gain;
                }
            },
        );
    }
    if cancel.is_cancelled() {
        return Some(ImproveResult::Cancelled);
    }

    // Gain round, phase B: serial Gauss–Seidel commit with dirty rescans.
    chunk.dirty_epoch += 1;
    let depoch = chunk.dirty_epoch;
    if chunk.dirty.len() < n {
        chunk.dirty.resize(n, 0);
    }
    let mut changed = false;
    for node in 0..n {
        if node % CANCEL_STRIDE == 0 && node > 0 && cancel.is_cancelled() {
            return Some(ImproveResult::Cancelled);
        }
        let (best_pos, best_gain) = if chunk.dirty[node] == depoch {
            let mut best_pos = policy[node];
            let mut best_gain = gain[node];
            let (lo, hi) = (first[node], first[node + 1]);
            for (position, &to) in (lo..hi).zip(&arc_to[lo..hi]) {
                let target = to as usize;
                if gain[target] > best_gain {
                    best_gain = gain[target];
                    best_pos = position;
                }
            }
            (best_pos, best_gain)
        } else {
            let cand = chunk.cand_rat[node];
            (cand.pos, cand.gain)
        };
        if best_gain > gain[node] {
            policy[node] = best_pos;
            gain[node] = best_gain;
            changed = true;
            for r in chunk.rev_first[node] as usize..chunk.rev_first[node + 1] as usize {
                let src = arc_from[chunk.rev_pos[r] as usize] as usize;
                chunk.dirty[src] = depoch;
            }
        }
    }
    if changed {
        return Some(ImproveResult::Changed);
    }

    // Bias round: pure snapshot pass, serial apply.
    {
        let arc_to: &[u32] = arc_to;
        let first: &[usize] = first;
        let arc_cost: &[Rational] = arc_cost;
        let arc_time: &[Rational] = arc_time;
        let gain: &[Rational] = gain;
        let value: &[Rational] = value;
        let cancel: &CancelToken = cancel;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut chunk.cand_rat,
            |base, out| {
                for (i, cand) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                        return;
                    }
                    let node = base + i;
                    let node_gain = gain[node];
                    let mut best_pos = usize::MAX;
                    let mut best_value = value[node];
                    cand.err = false;
                    for position in first[node]..first[node + 1] {
                        let target = arc_to[position] as usize;
                        if gain[target] != node_gain {
                            continue;
                        }
                        let candidate = node_gain
                            .checked_mul(&arc_time[position])
                            .and_then(|scaled| arc_cost[position].checked_sub(&scaled))
                            .and_then(|w| w.checked_add(&value[target]));
                        match candidate {
                            Ok(candidate) => {
                                if candidate > best_value {
                                    best_value = candidate;
                                    best_pos = position;
                                }
                            }
                            Err(_) => {
                                cand.err = true;
                                break;
                            }
                        }
                    }
                    cand.pos = best_pos;
                }
            },
        );
    }
    if cancel.is_cancelled() {
        return Some(ImproveResult::Cancelled);
    }
    for (node, slot) in policy.iter_mut().enumerate().take(n) {
        let cand = chunk.cand_rat[node];
        if cand.err {
            return None;
        }
        if cand.pos != usize::MAX {
            *slot = cand.pos;
            changed = true;
        }
    }
    Some(if changed {
        ImproveResult::Changed
    } else {
        ImproveResult::Stable
    })
}

// ---------------------------------------------------------------------------
// Partitioned Bellman–Ford for the parametric certifier.
// ---------------------------------------------------------------------------

/// Partitioned (level-synchronous, chunked-over-targets) violating-circuit
/// search. Returns exactly what [`find_violating_cycle`] returns:
///
/// * Converged with no improvement ⇒ `Ok(None)`, with `scratch.distance`
///   holding the same (unique) fixpoint distances as the serial pass.
/// * Any evidence of a violating circuit (still improving after `n` rounds)
///   or any arithmetic overflow ⇒ the partial state is discarded and the
///   serial pass re-runs from scratch, so the returned circuit, error value
///   and every tie-break are the serial ones.
pub(crate) fn find_violating_cycle_chunked(
    scratch: &mut Scratch,
    n: usize,
    lambda: Rational,
    intra: IntraOpts,
) -> Result<Option<Vec<usize>>, McrError> {
    let m = scratch.arc_len();
    ensure_rev_csr(scratch, n, m);

    // Reduced weights, chunk-parallel; any overflow defers to the serial
    // pass (which reproduces the exact error in arc order).
    scratch.reduced.clear();
    scratch.reduced.resize(m, (Rational::ZERO, Rational::ZERO));
    let reduced_err = std::sync::atomic::AtomicBool::new(false);
    {
        let arc_cost: &[Rational] = &scratch.arc_cost;
        let arc_time: &[Rational] = &scratch.arc_time;
        let cancel: &CancelToken = &scratch.cancel;
        let reduced_err = &reduced_err;
        for_chunks(
            intra.workers,
            intra.spawn,
            &mut scratch.reduced,
            |base, out| {
                for (i, slot) in out.iter_mut().enumerate() {
                    if i % CANCEL_STRIDE == 0
                        && (cancel.is_cancelled()
                            || reduced_err.load(std::sync::atomic::Ordering::Relaxed))
                    {
                        return;
                    }
                    let position = base + i;
                    let weight = lambda
                        .checked_mul(&arc_time[position])
                        .and_then(|scaled| arc_cost[position].checked_sub(&scaled));
                    let negated = arc_time[position].checked_neg();
                    match (weight, negated) {
                        (Ok(weight), Ok(negated)) => *slot = (weight, negated),
                        _ => {
                            reduced_err.store(true, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                }
            },
        );
    }
    if reduced_err.into_inner() {
        return find_violating_cycle(scratch, n, lambda);
    }
    if scratch.cancel.is_cancelled() {
        return Err(McrError::Cancelled);
    }

    scratch.distance.clear();
    scratch.distance.resize(n, (Rational::ZERO, Rational::ZERO));
    let chunk = &mut scratch.chunk;
    chunk.bf_active.clear();
    chunk.bf_active.resize(n, true);
    chunk.bf_next.clear();
    chunk.bf_next.resize(n, (Rational::ZERO, Rational::ZERO));
    chunk.bf_status.clear();
    chunk.bf_status.resize(n, 0);

    let mut round = 0usize;
    loop {
        if scratch.cancel.is_cancelled() {
            return Err(McrError::Cancelled);
        }
        round += 1;
        if round > n {
            // Still improving after n rounds: a violating circuit exists.
            // Discard the Jacobi state and let the serial pass find it, so
            // the extracted circuit (and its tie-breaks) is the serial one.
            return find_violating_cycle(scratch, n, lambda);
        }
        {
            let chunk = &mut scratch.chunk;
            let distance: &[(Rational, Rational)] = &scratch.distance;
            let reduced: &[(Rational, Rational)] = &scratch.reduced;
            let arc_from: &[u32] = &scratch.arc_from;
            let rev_first: &[u32] = &chunk.rev_first;
            let rev_pos: &[u32] = &chunk.rev_pos;
            let bf_active: &[bool] = &chunk.bf_active;
            let cancel: &CancelToken = &scratch.cancel;
            for_chunks2(
                intra.workers,
                intra.spawn,
                &mut chunk.bf_next,
                &mut chunk.bf_status,
                |base, dists, statuses| {
                    for i in 0..dists.len() {
                        if i % CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                            return;
                        }
                        let t = base + i;
                        let mut best = distance[t];
                        let mut status = 0u8;
                        let (lo, hi) = (rev_first[t] as usize, rev_first[t + 1] as usize);
                        for &rev_entry in &rev_pos[lo..hi] {
                            let position = rev_entry as usize;
                            let src = arc_from[position] as usize;
                            if !bf_active[src] {
                                continue;
                            }
                            let c0 = distance[src].0.checked_add(&reduced[position].0);
                            let c1 = distance[src].1.checked_add(&reduced[position].1);
                            match (c0, c1) {
                                (Ok(c0), Ok(c1)) => {
                                    let candidate = (c0, c1);
                                    if lex_greater(&candidate, &best) {
                                        best = candidate;
                                        status = 1;
                                    }
                                }
                                _ => {
                                    status = 2;
                                    break;
                                }
                            }
                        }
                        dists[i] = best;
                        statuses[i] = status;
                        if status == 2 {
                            return;
                        }
                    }
                },
            );
        }
        if scratch.cancel.is_cancelled() {
            return Err(McrError::Cancelled);
        }
        if scratch.chunk.bf_status.contains(&2) {
            // Overflow on some Jacobi path: the serial pass decides (its
            // Gauss–Seidel walks may not overflow at all, or overflow with
            // the exact serial error value).
            return find_violating_cycle(scratch, n, lambda);
        }
        std::mem::swap(&mut scratch.distance, &mut scratch.chunk.bf_next);
        let chunk = &mut scratch.chunk;
        let mut any = false;
        for t in 0..n {
            let improved = chunk.bf_status[t] == 1;
            chunk.bf_active[t] = improved;
            any |= improved;
        }
        if !any {
            return Ok(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{CancelToken, McrError, RatioGraph, Solver, SolverChoice};
    use csdf::Rational;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    fn arc_weights(next: &mut impl FnMut() -> u64, huge: bool) -> (Rational, Rational) {
        let cost = if huge {
            // Large enough that the fast-lane bound `B ≤ 2^62 / n` fails and
            // checked products overflow, driving the checked lane and the
            // scalar-kernel fallback.
            Rational::from_integer(((next() % 5) as i128 - 2) * (1i128 << 64))
        } else {
            Rational::new(-3 + (next() % 12) as i128, 1 + (next() % 4) as i128).unwrap()
        };
        // Times include negative and zero values, so Infinite classification
        // and the lexicographic edge cases stay on the menu.
        let time = Rational::new(-2 + (next() % 8) as i128, 1 + (next() % 3) as i128).unwrap();
        (cost, time)
    }

    /// One strongly connected ring with random chords — the single-SCC shape
    /// the chunked kernels exist for.
    fn ring_graph(seed: u64, huge_costs: bool) -> RatioGraph {
        let mut next = xorshift(seed);
        let n = 3 + (next() % 40) as usize;
        let mut g = RatioGraph::new(n);
        for i in 0..n {
            let (cost, time) = arc_weights(&mut next, huge_costs);
            g.add_arc(g.node(i), g.node((i + 1) % n), cost, time);
        }
        for _ in 0..(n as u64 / 2 + next() % 8) {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            let (cost, time) = arc_weights(&mut next, huge_costs);
            g.add_arc(g.node(a), g.node(b), cost, time);
        }
        g
    }

    /// A solver forced onto the chunked intra-component path: threshold one,
    /// spawn even on single-core hosts.
    fn chunked_solver(choice: SolverChoice, threads: usize, integer: bool) -> Solver {
        let mut solver = Solver::new(choice)
            .with_threads(threads)
            .with_integer_kernel(integer);
        solver.set_intra_min_nodes(1);
        solver.set_intra_spawn_force(true);
        solver
    }

    #[test]
    fn chunk_runner_covers_every_slot_exactly_once() {
        for len in [0usize, 1, 2, 3, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8, 64] {
                for spawn in [false, true] {
                    let mut data = vec![0u32; len];
                    super::for_chunks(workers, spawn, &mut data, |base, out| {
                        for (i, v) in out.iter_mut().enumerate() {
                            *v += u32::try_from(base + i).unwrap() + 1;
                        }
                    });
                    for (i, v) in data.iter().enumerate() {
                        assert_eq!(
                            *v,
                            u32::try_from(i).unwrap() + 1,
                            "len {len} workers {workers} spawn {spawn}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_howard_is_bit_identical_to_serial() {
        for seed in 0..60u64 {
            let g = ring_graph(seed, false);
            for integer in [true, false] {
                let serial = Solver::new(SolverChoice::Howard)
                    .with_integer_kernel(integer)
                    .solve(&g)
                    .unwrap();
                for threads in [2usize, 4, 8] {
                    let chunked = chunked_solver(SolverChoice::Howard, threads, integer)
                        .solve(&g)
                        .unwrap();
                    assert_eq!(serial, chunked, "seed {seed} x{threads} integer={integer}");
                }
            }
        }
    }

    #[test]
    fn chunked_parametric_certifier_is_bit_identical_to_serial() {
        for seed in 0..40u64 {
            let g = ring_graph(seed, false);
            let serial = Solver::new(SolverChoice::Parametric).solve(&g).unwrap();
            for threads in [2usize, 4, 8] {
                let chunked = chunked_solver(SolverChoice::Parametric, threads, true)
                    .solve(&g)
                    .unwrap();
                assert_eq!(serial, chunked, "seed {seed} x{threads}");
            }
        }
    }

    #[test]
    fn chunked_checked_lane_and_fallbacks_match_serial() {
        // Huge scaled magnitudes: the fast lane declines, the checked lane
        // overflows on some graphs (falling back to the chunked scalar kernel
        // or the parametric certifier), and some solves end in a rational
        // overflow error — all of which must be identical to the serial path.
        for seed in 0..40u64 {
            let g = ring_graph(seed, true);
            for choice in [SolverChoice::Howard, SolverChoice::Auto] {
                let serial = Solver::new(choice).solve(&g);
                for threads in [2usize, 4, 8] {
                    let chunked = chunked_solver(choice, threads, true).solve(&g);
                    assert_eq!(serial, chunked, "seed {seed} x{threads} {choice:?}");
                }
            }
        }
    }

    #[test]
    fn solver_is_reusable_after_chunked_solves() {
        // One solver alternating small (serial path) and forced-chunked
        // graphs: per-component caches must invalidate correctly.
        let mut solver = chunked_solver(SolverChoice::Auto, 4, true);
        for seed in 0..12u64 {
            let g = ring_graph(seed, false);
            let expected = Solver::new(SolverChoice::Auto).solve(&g).unwrap();
            assert_eq!(solver.solve(&g).unwrap(), expected, "seed {seed}");
        }
    }

    #[test]
    fn pre_cancelled_solves_fail_identically_at_any_width() {
        for seed in 0..8u64 {
            let g = ring_graph(seed, false);
            for threads in [1usize, 2, 4, 8] {
                let token = CancelToken::new();
                token.cancel();
                let mut solver = chunked_solver(SolverChoice::Auto, threads, true);
                solver.set_cancel_token(token);
                assert_eq!(
                    solver.solve(&g),
                    Err(McrError::Cancelled),
                    "seed {seed} x{threads}"
                );
                // The solver must stay fully reusable after a cancelled solve.
                solver.set_cancel_token(CancelToken::default());
                assert_eq!(
                    solver.solve(&g).unwrap(),
                    Solver::new(SolverChoice::Auto).solve(&g).unwrap(),
                    "seed {seed} x{threads} post-cancel"
                );
            }
        }
    }
}
