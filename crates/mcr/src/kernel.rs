//! Integer-numerator Howard kernel.
//!
//! The scalar policy iteration in [`crate::howard`] performs a GCD-reducing
//! exact [`Rational`] operation per arc per sweep — on K-Iter event graphs
//! that is the dominant cost of the whole throughput evaluation. This module
//! exploits the arena's time-scaling invariant (every `H(e)` of an event
//! graph is `−β/(i_b·q_t)` with a K-invariant denominator, and every `L(e)`
//! is an integer duration): after rescaling all arc costs and times of one
//! strongly connected component onto *common denominators* `Dc` / `Dt`, the
//! entire value/bias iteration runs on `i128` numerators —
//!
//! * a policy-circuit gain is the unreduced pair `(ΣL̂, ΣĤ)` of scaled sums,
//!   reduced **once per circuit** (a single GCD) to a canonical
//!   fraction, instead of one GCD per arithmetic operation;
//! * node values within a gain class share the class denominator, so bias
//!   comparisons are plain integer comparisons;
//! * gain comparisons across classes are one cross-multiplication.
//!
//! Rationals reappear only at the very end: the maximum ratio is
//! `λ = (g_n · Dt) / (g_d · Dc)`, built (and canonically reduced) once, and
//! the critical circuit is re-materialised through the exact rational
//! [`crate::solve::materialize_cycle`] path.
//!
//! The `chunked` module carries an intra-component parallel twin of this
//! kernel (same scaling, chunked sweeps, identical overflow points); an
//! order- or overflow-sensitive change here must be mirrored there.
//!
//! # Exactness and fallback
//!
//! Every decision the kernel takes (gain/bias comparisons, the circuit
//! classification, the convergence test, the certificate condition) is the
//! scalar decision multiplied through by positive common denominators, so the
//! policy trajectory — and therefore the returned circuit and ratio — is
//! **bit-identical** to the scalar path's. All arithmetic is checked: if a
//! scaled numerator, a product, or a common denominator does not fit `i128`,
//! [`howard_component_int`] returns `None` and the caller runs the scalar
//! kernel instead, which has no such limits. The equivalence is pinned by
//! `tests/properties.rs` across random graphs with negative/zero times.

use csdf::{gcd_i128, Rational};

use crate::howard::{policy_cycle_from, HowardOutcome};
use crate::solve::Scratch;

/// Runs Howard's policy iteration on the component currently loaded in
/// `scratch` (`n` nodes) using the integer kernel. Returns `None` when the
/// component cannot be scaled into `i128` range (the caller falls back to the
/// scalar kernel).
pub(crate) fn howard_component_int(scratch: &mut Scratch, n: usize) -> Option<HowardOutcome> {
    let m = scratch.arc_len();
    if m == 0 {
        return Some(HowardOutcome::Bail);
    }
    let (den_cost, den_time) = common_denominators(scratch)?;
    scale_arcs(scratch, den_cost, den_time)?;

    if scratch.int_gain_num.len() < n {
        scratch.int_gain_num.resize(n, 0);
        scratch.int_gain_den.resize(n, 1);
        scratch.int_value.resize(n, 0);
    }
    if scratch.policy.len() < n {
        scratch.policy.resize(n, 0);
    }
    // Initial policy: the first outgoing arc of each node (single-node
    // components owe their membership to a self-arc).
    for node in 0..n {
        if scratch.first[node] == scratch.first[node + 1] {
            return Some(HowardOutcome::Bail);
        }
        scratch.policy[node] = scratch.first[node];
    }
    let costs_nonneg = scratch.int_cost.iter().take(m).all(|&cost| cost >= 0);

    // Same round budget as the scalar kernel: a guard against pathological
    // same-gain oscillation, after which the parametric method takes over.
    let budget = 2 * n + 64;
    let mut converged = false;
    for _ in 0..budget {
        if scratch.cancel.is_cancelled() {
            // Bail hands over to the parametric method, whose first round
            // check turns the cancellation into `McrError::Cancelled`.
            return Some(HowardOutcome::Bail);
        }
        match evaluate_int(scratch, n)? {
            Evaluation::Done => {}
            Evaluation::Infinite(positions) => return Some(HowardOutcome::Infinite { positions }),
            Evaluation::Bail => return Some(HowardOutcome::Bail),
        }
        match improve_int(scratch, n)? {
            true => {}
            false => {
                converged = true;
                break;
            }
        }
    }
    if !converged {
        return Some(HowardOutcome::Bail);
    }

    // Keep the *last* maximum, exactly like the scalar kernel's `max_by`
    // over reduced rationals (canonical pairs compare `Equal` iff the
    // rationals are equal).
    let mut best_node = 0usize;
    for node in 1..n {
        if cmp_gain_checked(scratch, node, best_node)? != std::cmp::Ordering::Less {
            best_node = node;
        }
    }
    if scratch.int_gain_num[best_node] <= 0 {
        // Not a positive ratio: the parametric method decides between
        // NonPositive and the lexicographic Infinite edge cases from scratch.
        return Some(HowardOutcome::Bail);
    }
    // λ = (g_n / g_d) · (Dt / Dc), reduced once; identical to the scalar
    // circuit ratio because both are the same rational number in canonical
    // form. Overflow here is as good as overflow anywhere: fall back.
    let gain = Rational::new(
        scratch.int_gain_num[best_node],
        scratch.int_gain_den[best_node],
    )
    .expect("gain denominator is positive");
    let scaling = Rational::new(den_time, den_cost).expect("common denominators are positive");
    let lambda = gain.checked_mul(&scaling).ok()?;
    let positions = policy_cycle_from(scratch, best_node);
    if costs_nonneg && (0..n).all(|node| scratch.int_gain_num[node] > 0) {
        Some(HowardOutcome::Certified { lambda, positions })
    } else {
        Some(HowardOutcome::Estimate { lambda, positions })
    }
}

enum Evaluation {
    Done,
    Infinite(Vec<usize>),
    Bail,
}

/// Least common multiples of the cost and time denominators of the component
/// view, or `None` on overflow. One pass, with an equality fast path: on
/// event graphs most arcs already share their buffer's K-invariant
/// denominator, so the GCD rarely runs.
fn common_denominators(scratch: &Scratch) -> Option<(i128, i128)> {
    let mut den_cost: i128 = 1;
    let mut den_time: i128 = 1;
    for position in 0..scratch.arc_len() {
        let cost_den = scratch.arc_cost[position].denom();
        if cost_den != den_cost {
            den_cost = lcm_i128(den_cost, cost_den)?;
        }
        let time_den = scratch.arc_time[position].denom();
        if time_den != den_time {
            den_time = lcm_i128(den_time, time_den)?;
        }
    }
    Some((den_cost, den_time))
}

fn lcm_i128(a: i128, b: i128) -> Option<i128> {
    debug_assert!(a > 0 && b > 0);
    let g = gcd_i128(a, b);
    (a / g).checked_mul(b)
}

/// Rescales the component's arc costs and times onto the common denominators
/// (`L̂ = L·Dc/den(L)`, `Ĥ = H·Dt/den(H)`), or `None` on overflow.
fn scale_arcs(scratch: &mut Scratch, den_cost: i128, den_time: i128) -> Option<()> {
    let m = scratch.arc_len();
    scratch.int_cost.clear();
    scratch.int_time.clear();
    scratch.int_cost.reserve(m);
    scratch.int_time.reserve(m);
    for position in 0..m {
        let cost = scratch.arc_cost[position];
        let time = scratch.arc_time[position];
        scratch
            .int_cost
            .push(cost.numer().checked_mul(den_cost / cost.denom())?);
        scratch
            .int_time
            .push(time.numer().checked_mul(den_time / time.denom())?);
    }
    Some(())
}

/// Compares the gains of two local nodes: canonical pairs with positive
/// denominators, so one cross-multiplication decides. `None` on overflow
/// (the caller abandons the integer kernel — a wrong ordering must never be
/// returned silently).
fn cmp_gain_checked(scratch: &Scratch, a: usize, b: usize) -> Option<std::cmp::Ordering> {
    let lhs = scratch.int_gain_num[a].checked_mul(scratch.int_gain_den[b])?;
    let rhs = scratch.int_gain_num[b].checked_mul(scratch.int_gain_den[a])?;
    Some(lhs.cmp(&rhs))
}

/// `L̂(e)·g_d − g_n·Ĥ(e)`: the reduced weight of an arc under gain
/// `g_n / g_d`, scaled by the (positive) class denominator `g_d`.
fn reduced_weight_int(scratch: &Scratch, position: usize, num: i128, den: i128) -> Option<i128> {
    scratch.int_cost[position]
        .checked_mul(den)?
        .checked_sub(num.checked_mul(scratch.int_time[position])?)
}

/// Integer policy evaluation: mirrors `howard::evaluate` decision for
/// decision. Outer `None` means arithmetic overflow (caller falls back to
/// the scalar kernel); the inner [`Evaluation`] values have the scalar
/// meanings.
fn evaluate_int(scratch: &mut Scratch, n: usize) -> Option<Evaluation> {
    scratch.epoch += 2;
    let on_walk = scratch.epoch - 1;
    let resolved = scratch.epoch;
    for start in 0..n {
        if scratch.resolved[start] == resolved {
            continue;
        }
        scratch.walk.clear();
        let mut current = start;
        while scratch.resolved[current] != resolved && scratch.mark[current] != on_walk {
            scratch.mark[current] = on_walk;
            scratch.mark_pos[current] = scratch.walk.len();
            scratch.walk.push(current);
            current = scratch.arc_to[scratch.policy[current]] as usize;
        }
        let tree_top = if scratch.resolved[current] == resolved {
            scratch.walk.len()
        } else {
            // New policy circuit: walk[p..] in traversal order. Sum the
            // scaled costs and times — plain checked integer adds.
            let p = scratch.mark_pos[current];
            let mut cost: i128 = 0;
            let mut time: i128 = 0;
            for &node in &scratch.walk[p..] {
                let position = scratch.policy[node];
                cost = cost.checked_add(scratch.int_cost[position])?;
                time = time.checked_add(scratch.int_time[position])?;
            }
            if time <= 0 {
                // Same classification as the scalar kernel (the positive
                // scaling preserves every sign).
                if cost > 0 || (cost == 0 && time < 0) {
                    let positions = scratch.walk[p..]
                        .iter()
                        .map(|&node| scratch.policy[node])
                        .collect();
                    return Some(Evaluation::Infinite(positions));
                }
                return Some(Evaluation::Bail);
            }
            // One GCD per circuit: the canonical gain pair.
            let g = gcd_i128(cost, time);
            let (num, den) = if g > 1 {
                (cost / g, time / g)
            } else {
                (cost, time)
            };
            let anchor = scratch.walk[p];
            scratch.int_gain_num[anchor] = num;
            scratch.int_gain_den[anchor] = den;
            scratch.int_value[anchor] = 0;
            scratch.resolved[anchor] = resolved;
            let mut next_value: i128 = 0;
            for walk_index in (p + 1..scratch.walk.len()).rev() {
                let node = scratch.walk[walk_index];
                let weight = reduced_weight_int(scratch, scratch.policy[node], num, den)?;
                let value = weight.checked_add(next_value)?;
                scratch.int_gain_num[node] = num;
                scratch.int_gain_den[node] = den;
                scratch.int_value[node] = value;
                scratch.resolved[node] = resolved;
                next_value = value;
            }
            p
        };
        // Tree part of the walk: propagate gain class and value backwards
        // from the (now resolved) junction.
        for walk_index in (0..tree_top).rev() {
            let node = scratch.walk[walk_index];
            let position = scratch.policy[node];
            let successor = scratch.arc_to[position] as usize;
            debug_assert_eq!(scratch.resolved[successor], resolved);
            let num = scratch.int_gain_num[successor];
            let den = scratch.int_gain_den[successor];
            let weight = reduced_weight_int(scratch, position, num, den)?;
            let value = weight.checked_add(scratch.int_value[successor])?;
            scratch.int_gain_num[node] = num;
            scratch.int_gain_den[node] = den;
            scratch.int_value[node] = value;
            scratch.resolved[node] = resolved;
        }
    }
    Some(Evaluation::Done)
}

/// Integer policy improvement, mirroring `howard::improve`: gain
/// improvements first (multichain rule), then bias improvements between
/// equal-gain nodes — where "equal gain" is equality of canonical pairs, so
/// the bias comparison is a plain integer comparison over the shared class
/// denominator. Returns `Some(changed)`, or `None` on overflow.
fn improve_int(scratch: &mut Scratch, n: usize) -> Option<bool> {
    let mut changed = false;
    for node in 0..n {
        let mut best_position = scratch.policy[node];
        let mut best = node;
        for position in scratch.first[node]..scratch.first[node + 1] {
            let target = scratch.arc_to[position] as usize;
            if cmp_gain_checked(scratch, target, best)? == std::cmp::Ordering::Greater {
                best = target;
                best_position = position;
            }
        }
        if cmp_gain_checked(scratch, best, node)? == std::cmp::Ordering::Greater {
            scratch.policy[node] = best_position;
            scratch.int_gain_num[node] = scratch.int_gain_num[best];
            scratch.int_gain_den[node] = scratch.int_gain_den[best];
            changed = true;
        }
    }
    if changed {
        return Some(true);
    }
    for node in 0..n {
        let num = scratch.int_gain_num[node];
        let den = scratch.int_gain_den[node];
        let mut best_position = usize::MAX;
        let mut best_value = scratch.int_value[node];
        for position in scratch.first[node]..scratch.first[node + 1] {
            let target = scratch.arc_to[position] as usize;
            // Canonical pairs: different representation ⇔ different gain.
            if scratch.int_gain_num[target] != num || scratch.int_gain_den[target] != den {
                continue;
            }
            let weight = reduced_weight_int(scratch, position, num, den)?;
            let candidate = weight.checked_add(scratch.int_value[target])?;
            if candidate > best_value {
                best_value = candidate;
                best_position = position;
            }
        }
        if best_position != usize::MAX {
            scratch.policy[node] = best_position;
            changed = true;
        }
    }
    Some(changed)
}
