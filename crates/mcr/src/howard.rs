//! Howard's policy iteration for the maximum cost-to-time ratio.
//!
//! Policy iteration is the practical fast MCRP solver on event graphs
//! (Dasdan–Irani–Gupta's experimental study and the `sdf3`/`kiter` lines of
//! tools both use it): instead of `Θ(n)` Bellman–Ford relaxation rounds per
//! candidate ratio, it maintains one outgoing *policy* arc per node and
//! alternates exact policy evaluation with greedy policy improvement. On real
//! event graphs it converges after a handful of rounds, each of which costs a
//! single sweep over the arcs.
//!
//! The `chunked` module carries intra-component parallel twins of this
//! module's evaluate/improve sweeps (chunked over CSR row blocks,
//! bit-identical by construction); an order-sensitive change here must be
//! mirrored there.
//!
//! # Exactness
//!
//! The solver works on the same component view and exact [`Rational`]
//! arithmetic as the parametric method and returns **identical** results; the
//! contract is enforced structurally:
//!
//! * A policy circuit with non-positive total time and lexicographically
//!   positive weight is a real circuit of the graph that certifies the
//!   `Infinite` outcome for *any* candidate ratio, so it is returned
//!   immediately.
//! * At convergence with all arc costs non-negative and all policy gains
//!   strictly positive, the policy values are a proof that no circuit —
//!   including circuits with non-positive time — beats the best policy
//!   circuit (see `certificate_applies`), so the outcome is emitted directly.
//! * In every other situation ([`HowardOutcome::Estimate`] /
//!   [`HowardOutcome::Bail`]) the caller re-enters the parametric iteration,
//!   seeded with Howard's ratio, which certifies or improves it with the
//!   lexicographic Bellman–Ford pass. Howard is therefore an accelerator:
//!   correctness never depends on it.

use csdf::Rational;

use crate::solve::Scratch;

/// What the policy iteration concluded for one strongly connected component.
pub(crate) enum HowardOutcome {
    /// A real circuit with non-positive total time whose lexicographic weight
    /// is positive: the component is `Infinite` at every candidate ratio.
    Infinite {
        /// Arc positions (component view) of the circuit, in traversal order.
        positions: Vec<usize>,
    },
    /// Converged with a self-contained optimality certificate: `lambda` is
    /// the exact maximum ratio and `positions` a circuit attaining it.
    Certified {
        /// The exact maximum cost-to-time ratio.
        lambda: Rational,
        /// Arc positions of a critical circuit, in traversal order.
        positions: Vec<usize>,
    },
    /// Converged on a real circuit of ratio `lambda > 0`, but the cheap
    /// certificate does not apply (negative arc costs or a zero-gain policy
    /// class); the parametric iteration must be seeded with this estimate.
    Estimate {
        /// Ratio of the best policy circuit (a lower bound of the maximum).
        lambda: Rational,
        /// Arc positions of that circuit, in traversal order.
        positions: Vec<usize>,
    },
    /// Policy iteration is not applicable (exotic circuit weights, arithmetic
    /// overflow, or no convergence within the round budget); the caller runs
    /// the plain parametric method.
    Bail,
}

enum Evaluation {
    Done,
    Infinite(Vec<usize>),
    Bail,
}

/// Runs Howard's policy iteration on the component currently loaded in
/// `scratch` (`n` nodes).
pub(crate) fn howard_component(scratch: &mut Scratch, n: usize) -> HowardOutcome {
    if scratch.arc_len() == 0 {
        return HowardOutcome::Bail;
    }
    if scratch.policy.len() < n {
        let len = n;
        scratch.policy.resize(len, 0);
        scratch.gain.resize(len, Rational::ZERO);
        scratch.value.resize(len, Rational::ZERO);
    }
    // Initial policy: the first outgoing arc of each node. Strong
    // connectivity guarantees one exists for components of more than one
    // node; a single-node component owes its membership to a self-arc.
    for node in 0..n {
        if scratch.first[node] == scratch.first[node + 1] {
            return HowardOutcome::Bail;
        }
        scratch.policy[node] = scratch.first[node];
    }
    let costs_nonneg = scratch.arc_cost.iter().all(|cost| !cost.is_negative());

    // Policy iteration converges after a few rounds in practice; the budget
    // is a guard against pathological same-gain oscillation, after which the
    // (always correct) parametric method takes over.
    let budget = 2 * n + 64;
    let mut converged = false;
    for _ in 0..budget {
        if scratch.cancel.is_cancelled() {
            // Bail hands over to the parametric method, whose first round
            // check turns the cancellation into `McrError::Cancelled`.
            return HowardOutcome::Bail;
        }
        match evaluate(scratch, n) {
            Evaluation::Done => {}
            Evaluation::Infinite(positions) => return HowardOutcome::Infinite { positions },
            Evaluation::Bail => return HowardOutcome::Bail,
        }
        match improve(scratch, n) {
            Some(true) => {}
            Some(false) => {
                converged = true;
                break;
            }
            None => return HowardOutcome::Bail,
        }
    }
    if !converged {
        return HowardOutcome::Bail;
    }

    let best_node = (0..n)
        .max_by(|&a, &b| scratch.gain[a].cmp(&scratch.gain[b]))
        .expect("component has at least one node");
    let lambda = scratch.gain[best_node];
    if !lambda.is_positive() {
        // The parametric method decides between NonPositive and the
        // lexicographic Infinite edge cases from scratch; nothing to seed.
        return HowardOutcome::Bail;
    }
    let positions = policy_cycle_from(scratch, best_node);
    if costs_nonneg && (0..n).all(|node| scratch.gain[node].is_positive()) {
        HowardOutcome::Certified { lambda, positions }
    } else {
        HowardOutcome::Estimate { lambda, positions }
    }
}

/// Exact policy evaluation: finds every circuit of the policy graph, assigns
/// each node the gain (circuit ratio) of the circuit its policy path reaches
/// and a relative value (bias) telescoping along the path.
fn evaluate(scratch: &mut Scratch, n: usize) -> Evaluation {
    scratch.epoch += 2;
    let on_walk = scratch.epoch - 1;
    let resolved = scratch.epoch;
    for start in 0..n {
        if scratch.resolved[start] == resolved {
            continue;
        }
        // Follow the policy until hitting either an already resolved node or
        // the current walk itself (a new policy circuit).
        scratch.walk.clear();
        let mut current = start;
        while scratch.resolved[current] != resolved && scratch.mark[current] != on_walk {
            scratch.mark[current] = on_walk;
            scratch.mark_pos[current] = scratch.walk.len();
            scratch.walk.push(current);
            current = scratch.arc_to[scratch.policy[current]] as usize;
        }
        let tree_top = if scratch.resolved[current] == resolved {
            scratch.walk.len()
        } else {
            // New circuit: walk[p..] in traversal order. Sums accumulate
            // unreduced (no GCD per arc, one reduction per circuit).
            let p = scratch.mark_pos[current];
            let mut cost_sum = csdf::RationalSum::new();
            let mut time_sum = csdf::RationalSum::new();
            for &node in &scratch.walk[p..] {
                let position = scratch.policy[node];
                if cost_sum.add(&scratch.arc_cost[position]).is_err()
                    || time_sum.add(&scratch.arc_time[position]).is_err()
                {
                    return Evaluation::Bail;
                }
            }
            let cost = cost_sum.finish();
            let time = time_sum.finish();
            if !time.is_positive() {
                // A real circuit with non-positive time. Lexicographically
                // positive weight (cost > 0, or cost = 0 with time < 0) makes
                // the component Infinite at every λ ≥ 0; otherwise policy
                // iteration cannot evaluate it — hand over to the parametric
                // method.
                if cost.is_positive() || (cost.is_zero() && time.is_negative()) {
                    let positions = scratch.walk[p..]
                        .iter()
                        .map(|&node| scratch.policy[node])
                        .collect();
                    return Evaluation::Infinite(positions);
                }
                return Evaluation::Bail;
            }
            let Ok(gain) = cost.checked_div(&time) else {
                return Evaluation::Bail;
            };
            // Values around the circuit: anchor at walk[p] with value zero,
            // then telescope backwards (the reduced weights sum to zero
            // around the circuit, so this is consistent).
            let anchor = scratch.walk[p];
            scratch.gain[anchor] = gain;
            scratch.value[anchor] = Rational::ZERO;
            scratch.resolved[anchor] = resolved;
            let mut next_value = Rational::ZERO;
            for index in (p + 1..scratch.walk.len()).rev() {
                let node = scratch.walk[index];
                let Some(weight) = reduced_weight(scratch, scratch.policy[node], gain) else {
                    return Evaluation::Bail;
                };
                let Ok(value) = weight.checked_add(&next_value) else {
                    return Evaluation::Bail;
                };
                scratch.gain[node] = gain;
                scratch.value[node] = value;
                scratch.resolved[node] = resolved;
                next_value = value;
            }
            p
        };
        // Tree part of the walk: propagate gain and value backwards from the
        // (now resolved) junction.
        for index in (0..tree_top).rev() {
            let node = scratch.walk[index];
            let position = scratch.policy[node];
            let successor = scratch.arc_to[position] as usize;
            debug_assert_eq!(scratch.resolved[successor], resolved);
            let gain = scratch.gain[successor];
            let Some(weight) = reduced_weight(scratch, position, gain) else {
                return Evaluation::Bail;
            };
            let Ok(value) = weight.checked_add(&scratch.value[successor]) else {
                return Evaluation::Bail;
            };
            scratch.gain[node] = gain;
            scratch.value[node] = value;
            scratch.resolved[node] = resolved;
        }
    }
    Evaluation::Done
}

/// `cost(e) − gain·time(e)`, or `None` on overflow.
fn reduced_weight(scratch: &Scratch, position: usize, gain: Rational) -> Option<Rational> {
    let scaled = gain.checked_mul(&scratch.arc_time[position]).ok()?;
    scratch.arc_cost[position].checked_sub(&scaled).ok()
}

/// One policy improvement round. Gain improvements take priority (multichain
/// rule); bias improvements only apply between equal-gain nodes. Returns
/// `Some(changed)`, or `None` on arithmetic overflow.
fn improve(scratch: &mut Scratch, n: usize) -> Option<bool> {
    let mut changed = false;
    for node in 0..n {
        let mut best_position = scratch.policy[node];
        let mut best_gain = scratch.gain[node];
        for position in scratch.first[node]..scratch.first[node + 1] {
            let target = scratch.arc_to[position] as usize;
            if scratch.gain[target] > best_gain {
                best_gain = scratch.gain[target];
                best_position = position;
            }
        }
        if best_gain > scratch.gain[node] {
            scratch.policy[node] = best_position;
            scratch.gain[node] = best_gain;
            changed = true;
        }
    }
    if changed {
        return Some(true);
    }
    for node in 0..n {
        let gain = scratch.gain[node];
        let mut best_position = usize::MAX;
        let mut best_value = scratch.value[node];
        for position in scratch.first[node]..scratch.first[node + 1] {
            let target = scratch.arc_to[position] as usize;
            if scratch.gain[target] != gain {
                continue;
            }
            let weight = reduced_weight(scratch, position, gain)?;
            let candidate = weight.checked_add(&scratch.value[target]).ok()?;
            if candidate > best_value {
                best_value = candidate;
                best_position = position;
            }
        }
        if best_position != usize::MAX {
            scratch.policy[node] = best_position;
            changed = true;
        }
    }
    Some(changed)
}

/// Collects the policy circuit reached from `start`, as arc positions in
/// traversal order. Shared with the integer kernel ([`crate::kernel`]): it
/// only reads the policy and the arc targets, which both kernels maintain
/// identically.
pub(crate) fn policy_cycle_from(scratch: &mut Scratch, start: usize) -> Vec<usize> {
    scratch.epoch += 1;
    let seen = scratch.epoch;
    let mut current = start;
    while scratch.mark[current] != seen {
        scratch.mark[current] = seen;
        current = scratch.arc_to[scratch.policy[current]] as usize;
    }
    let entry = current;
    let mut positions = Vec::new();
    loop {
        positions.push(scratch.policy[current]);
        current = scratch.arc_to[scratch.policy[current]] as usize;
        if current == entry {
            break;
        }
    }
    positions
}
