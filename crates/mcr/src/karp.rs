//! Karp's algorithm for the maximum cycle mean.
//!
//! The maximum cycle *mean* is the special case of the cost-to-time ratio in
//! which every arc has time 1 (`λ = max_c ΣL(c) / |c|`). Karp's classical
//! dynamic program computes it in `O(V·E)` per strongly connected component
//! and is used in this workspace as an independent oracle for the parametric
//! solver and for homogeneous (HSDF-style) analyses.

use csdf::Rational;

use crate::graph::RatioGraph;
use crate::scc::SccDecomposition;
use crate::solve::McrError;

/// Computes the maximum cycle mean `max_c ΣL(c) / |c|` of `graph`, ignoring
/// the arc times entirely.
///
/// Returns `None` when the graph has no circuit.
///
/// # Errors
///
/// Returns [`McrError::Rational`] on arithmetic overflow.
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, maximum_cycle_mean};
/// use csdf::Rational;
///
/// let mut graph = RatioGraph::new(2);
/// let (a, b) = (graph.node(0), graph.node(1));
/// graph.add_arc(a, b, Rational::from_integer(3), Rational::ONE);
/// graph.add_arc(b, a, Rational::from_integer(1), Rational::ONE);
/// let mean = maximum_cycle_mean(&graph)?;
/// assert_eq!(mean, Some(Rational::from_integer(2)));
/// # Ok::<(), mcr::McrError>(())
/// ```
pub fn maximum_cycle_mean(graph: &RatioGraph) -> Result<Option<Rational>, McrError> {
    let scc = SccDecomposition::compute(graph);
    // Group the intra-component arcs (local endpoints) in ONE pass over the
    // flat arc storage — every node has exactly one component, so a single
    // global local-index table serves all components at once. Works without
    // a rebuilt CSR index and stays linear however many components exist.
    let mut local_of = vec![usize::MAX; graph.node_count()];
    for component in 0..scc.component_count() {
        for (local, node) in scc.component(component).iter().enumerate() {
            local_of[node.index()] = local;
        }
    }
    let mut arcs_by_component: Vec<Vec<(usize, usize, Rational)>> =
        vec![Vec::new(); scc.component_count()];
    for (_, arc) in graph.arcs() {
        let component = scc.component_of(arc.from);
        if component == scc.component_of(arc.to) {
            arcs_by_component[component].push((
                local_of[arc.from.index()],
                local_of[arc.to.index()],
                arc.cost,
            ));
        }
    }

    let mut best: Option<Rational> = None;
    for (component, arcs) in arcs_by_component.iter().enumerate() {
        // A component is cyclic iff it has more than one node or its single
        // node carries a self-arc — i.e. iff it has any intra-component arc.
        let n = scc.component(component).len();
        if n == 1 && arcs.is_empty() {
            continue;
        }
        let mean = rolling_cycle_mean(n, arcs)?;
        if let Some(mean) = mean {
            if best.map_or(true, |b| mean > b) {
                best = Some(mean);
            }
        }
    }
    Ok(best)
}

/// Rolling-row Karp recurrence over a dense arc list (`(from, to, cost)` with
/// local indices `< n`). Shared by [`maximum_cycle_mean`] and the
/// `SolverChoice::Karp` path of the ratio solver.
///
/// `D_k(v)` = maximum weight of a walk of exactly k arcs ending at v, starting
/// anywhere in the component (classical Karp table with a virtual source).
/// Materialising the full (n+1)×n table is quadratic memory and blows up on
/// the 10k-task components the scalability work targets, so only two rolling
/// rows are kept and the recurrence runs twice: pass one computes the final
/// row `D_n`, pass two recomputes each `D_k` and folds
/// λ = `max_v` min_{0 ≤ k < n} (`D_n(v)` − `D_k(v)`) / (n − k) incrementally.
pub(crate) fn rolling_cycle_mean(
    n: usize,
    arcs: &[(usize, usize, Rational)],
) -> Result<Option<Rational>, McrError> {
    let relax =
        |prev: &[Option<Rational>], curr: &mut [Option<Rational>]| -> Result<(), McrError> {
            curr.fill(None);
            for &(from, to, cost) in arcs {
                if let Some(previous) = prev[from] {
                    let candidate = previous.checked_add(&cost)?;
                    if curr[to].map_or(true, |current| candidate > current) {
                        curr[to] = Some(candidate);
                    }
                }
            }
            Ok(())
        };

    let mut prev: Vec<Option<Rational>> = vec![Some(Rational::ZERO); n];
    let mut curr: Vec<Option<Rational>> = vec![None; n];
    for _ in 1..=n {
        relax(&prev, &mut curr)?;
        std::mem::swap(&mut prev, &mut curr);
    }
    let final_row = prev;

    let mut minima: Vec<Option<Rational>> = vec![None; n];
    let mut prev: Vec<Option<Rational>> = vec![Some(Rational::ZERO); n];
    let mut curr: Vec<Option<Rational>> = vec![None; n];
    for k in 0..n {
        for v in 0..n {
            let (Some(final_value), Some(intermediate)) = (final_row[v], prev[v]) else {
                continue;
            };
            let numerator = final_value.checked_sub(&intermediate)?;
            let mean = numerator.checked_div(&Rational::from_integer((n - k) as i128))?;
            if minima[v].map_or(true, |m| mean < m) {
                minima[v] = Some(mean);
            }
        }
        if k + 1 < n {
            relax(&prev, &mut curr)?;
            std::mem::swap(&mut prev, &mut curr);
        }
    }

    let mut best: Option<Rational> = None;
    for v in 0..n {
        if final_row[v].is_none() {
            continue;
        }
        if let Some(minimum) = minima[v] {
            if best.map_or(true, |b| minimum > b) {
                best = Some(minimum);
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{maximum_cycle_ratio, CycleRatioOutcome};

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    #[test]
    fn simple_two_cycle() {
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(4), Rational::ONE);
        g.add_arc(g.node(1), g.node(0), int(2), Rational::ONE);
        g.add_arc(g.node(1), g.node(2), int(10), Rational::ONE);
        g.add_arc(g.node(2), g.node(1), int(0), Rational::ONE);
        // Means: (4+2)/2 = 3 and (10+0)/2 = 5.
        assert_eq!(maximum_cycle_mean(&g).unwrap(), Some(int(5)));
    }

    #[test]
    fn acyclic_graph_has_no_mean() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), Rational::ONE);
        assert_eq!(maximum_cycle_mean(&g).unwrap(), None);
    }

    #[test]
    fn self_loop_mean_is_its_cost() {
        let mut g = RatioGraph::new(1);
        g.add_arc(g.node(0), g.node(0), int(9), Rational::ONE);
        assert_eq!(maximum_cycle_mean(&g).unwrap(), Some(int(9)));
    }

    #[test]
    fn agrees_with_ratio_solver_on_unit_times() {
        let mut g = RatioGraph::new(4);
        g.add_arc(g.node(0), g.node(1), int(3), Rational::ONE);
        g.add_arc(g.node(1), g.node(2), int(1), Rational::ONE);
        g.add_arc(g.node(2), g.node(0), int(5), Rational::ONE);
        g.add_arc(g.node(2), g.node(3), int(2), Rational::ONE);
        g.add_arc(g.node(3), g.node(2), int(8), Rational::ONE);
        let karp = maximum_cycle_mean(&g).unwrap().unwrap();
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, karp),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// With the old (n+1)×n table this allocated ~34M `Option<Rational>`
    /// entries (gigabytes); the rolling-row recurrence keeps it at O(n).
    #[test]
    fn large_scc_stays_in_linear_memory() {
        let n = 2048usize;
        let mut g = RatioGraph::new(n);
        // A single ring whose costs cycle 1, 2, 3, 4: mean = 10/4 = 5/2.
        for i in 0..n {
            g.add_arc(
                g.node(i),
                g.node((i + 1) % n),
                int(1 + (i as i128 % 4)),
                Rational::ONE,
            );
        }
        assert_eq!(
            maximum_cycle_mean(&g).unwrap(),
            Some(Rational::new(5, 2).unwrap())
        );
    }

    #[test]
    fn negative_means_are_supported() {
        // A single cycle whose mean is negative: the ratio solver reports
        // NonPositive, Karp still reports the exact mean.
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(-3), Rational::ONE);
        g.add_arc(g.node(1), g.node(0), int(1), Rational::ONE);
        assert_eq!(
            maximum_cycle_mean(&g).unwrap(),
            Some(Rational::new(-1, 1).unwrap())
        );
        assert_eq!(
            maximum_cycle_ratio(&g).unwrap(),
            CycleRatioOutcome::NonPositive
        );
    }
}
