//! Brute-force cycle enumeration, used as a test oracle for the parametric
//! MCRP solver on small graphs.

use csdf::Rational;

use crate::graph::{ArcId, NodeId, RatioGraph};
use crate::solve::{CriticalCycle, CycleRatioOutcome, McrError};

/// Enumerates every elementary circuit of `graph` and returns them as arc
/// sequences.
///
/// The enumeration is a straightforward DFS from each start node that only
/// visits nodes with an index greater than or equal to the start node (so each
/// elementary circuit is reported exactly once, rooted at its smallest node).
/// Intended for small graphs only — the number of circuits can be exponential.
pub fn enumerate_elementary_cycles(graph: &RatioGraph) -> Vec<Vec<ArcId>> {
    let mut cycles = Vec::new();
    let n = graph.node_count();
    // Local adjacency so the oracle works on graphs whose CSR index was
    // never rebuilt (it is a test helper; the allocation is irrelevant).
    let mut outgoing: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for (arc_id, arc) in graph.arcs() {
        outgoing[arc.from.index()].push(arc_id);
    }
    for start in 0..n {
        let start_node = NodeId::new(start);
        let mut path_arcs: Vec<ArcId> = Vec::new();
        let mut on_path = vec![false; n];
        dfs(
            graph,
            &outgoing,
            start_node,
            start_node,
            &mut path_arcs,
            &mut on_path,
            &mut cycles,
        );
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    graph: &RatioGraph,
    outgoing: &[Vec<ArcId>],
    start: NodeId,
    current: NodeId,
    path_arcs: &mut Vec<ArcId>,
    on_path: &mut [bool],
    cycles: &mut Vec<Vec<ArcId>>,
) {
    on_path[current.index()] = true;
    for &arc_id in &outgoing[current.index()] {
        let next = graph.arc(arc_id).to;
        if next == start {
            let mut cycle = path_arcs.clone();
            cycle.push(arc_id);
            cycles.push(cycle);
        } else if next.index() > start.index() && !on_path[next.index()] {
            path_arcs.push(arc_id);
            dfs(graph, outgoing, start, next, path_arcs, on_path, cycles);
            path_arcs.pop();
        }
    }
    on_path[current.index()] = false;
}

/// Computes the maximum cycle ratio by enumerating every elementary circuit.
///
/// Semantics match [`crate::maximum_cycle_ratio`]: circuits with non-positive
/// total time and positive lexicographic weight make the outcome
/// [`CycleRatioOutcome::Infinite`]; circuits with non-positive ratio are
/// ignored.
///
/// # Errors
///
/// Returns [`McrError::Rational`] on arithmetic overflow.
pub fn maximum_cycle_ratio_brute_force(graph: &RatioGraph) -> Result<CycleRatioOutcome, McrError> {
    let cycles = enumerate_elementary_cycles(graph);
    if cycles.is_empty() {
        return Ok(CycleRatioOutcome::Acyclic);
    }
    let mut best: Option<(Rational, CriticalCycle)> = None;
    for arcs in cycles {
        let (cost, time) = graph.path_weight(&arcs)?;
        let nodes = arcs.iter().map(|&a| graph.arc(a).from).collect();
        let cycle = CriticalCycle {
            arcs,
            nodes,
            cost,
            time,
        };
        if !time.is_positive() {
            if cost.is_positive() || time.is_negative() {
                return Ok(CycleRatioOutcome::Infinite { cycle });
            }
            continue;
        }
        let ratio = cost.checked_div(&time)?;
        if !ratio.is_positive() {
            continue;
        }
        if best.as_ref().map_or(true, |(r, _)| ratio > *r) {
            best = Some((ratio, cycle));
        }
    }
    Ok(match best {
        Some((ratio, cycle)) => CycleRatioOutcome::Finite { ratio, cycle },
        None => CycleRatioOutcome::NonPositive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::maximum_cycle_ratio;

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    #[test]
    fn enumerates_all_cycles_of_a_small_graph() {
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(0), int(1), int(1));
        g.add_arc(g.node(1), g.node(2), int(1), int(1));
        g.add_arc(g.node(2), g.node(0), int(1), int(1));
        g.add_arc(g.node(2), g.node(2), int(1), int(1));
        let cycles = enumerate_elementary_cycles(&g);
        // 0->1->0, 0->1->2->0, 2->2
        assert_eq!(cycles.len(), 3);
    }

    #[test]
    fn agrees_with_the_parametric_solver() {
        let mut g = RatioGraph::new(4);
        g.add_arc(g.node(0), g.node(1), int(2), int(1));
        g.add_arc(g.node(1), g.node(2), int(5), int(2));
        g.add_arc(g.node(2), g.node(0), int(1), int(1));
        g.add_arc(g.node(2), g.node(3), int(4), int(1));
        g.add_arc(g.node(3), g.node(1), int(3), int(2));
        let brute = maximum_cycle_ratio_brute_force(&g).unwrap();
        let fast = maximum_cycle_ratio(&g).unwrap();
        assert_eq!(brute.ratio(), fast.ratio());
    }

    #[test]
    fn infinite_outcome_matches() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(0));
        g.add_arc(g.node(1), g.node(0), int(1), int(0));
        assert!(matches!(
            maximum_cycle_ratio_brute_force(&g).unwrap(),
            CycleRatioOutcome::Infinite { .. }
        ));
        assert!(matches!(
            maximum_cycle_ratio(&g).unwrap(),
            CycleRatioOutcome::Infinite { .. }
        ));
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        assert!(enumerate_elementary_cycles(&g).is_empty());
        assert_eq!(
            maximum_cycle_ratio_brute_force(&g).unwrap(),
            CycleRatioOutcome::Acyclic
        );
    }
}
