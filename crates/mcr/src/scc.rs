//! Strongly connected components (iterative Tarjan).

use crate::graph::{NodeId, RatioGraph};

/// The strongly connected components of a [`RatioGraph`].
///
/// Components are numbered in reverse topological order (Tarjan's output
/// order); every node belongs to exactly one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    component_of: Vec<usize>,
    components: Vec<Vec<NodeId>>,
}

impl SccDecomposition {
    /// Computes the strongly connected components of `graph`.
    pub fn compute(graph: &RatioGraph) -> Self {
        let n = graph.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component_of = vec![usize::MAX; n];
        let mut components: Vec<Vec<NodeId>> = Vec::new();
        let mut next_index = 0usize;

        // Iterative Tarjan: (node, next outgoing-arc position) call frames.
        let mut call_stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call_stack.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (node, ref mut arc_position)) = call_stack.last_mut() {
                let outgoing = graph.outgoing(NodeId::new(node));
                if *arc_position < outgoing.len() {
                    let arc = graph.arc(outgoing[*arc_position]);
                    *arc_position += 1;
                    let successor = arc.to.index();
                    if index[successor] == usize::MAX {
                        index[successor] = next_index;
                        low[successor] = next_index;
                        next_index += 1;
                        stack.push(successor);
                        on_stack[successor] = true;
                        call_stack.push((successor, 0));
                    } else if on_stack[successor] {
                        low[node] = low[node].min(index[successor]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        low[parent] = low[parent].min(low[node]);
                    }
                    if low[node] == index[node] {
                        let component_id = components.len();
                        let mut members = Vec::new();
                        loop {
                            let member = stack.pop().expect("tarjan stack underflow");
                            on_stack[member] = false;
                            component_of[member] = component_id;
                            members.push(NodeId::new(member));
                            if member == node {
                                break;
                            }
                        }
                        components.push(members);
                    }
                }
            }
        }

        SccDecomposition {
            component_of,
            components,
        }
    }

    /// Component index of a node.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node.index()]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Members of component `index`.
    pub fn component(&self, index: usize) -> &[NodeId] {
        &self.components[index]
    }

    /// Iterator over all components.
    pub fn components(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.components.iter().map(Vec::as_slice)
    }

    /// Returns `true` when the component containing `node` can hold a cycle:
    /// it has more than one node, or its single node has a self-arc.
    pub fn is_cyclic_component(&self, graph: &RatioGraph, index: usize) -> bool {
        let members = &self.components[index];
        if members.len() > 1 {
            return true;
        }
        let node = members[0];
        graph
            .outgoing(node)
            .iter()
            .any(|&arc| graph.arc(arc).to == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::Rational;

    fn arc(g: &mut RatioGraph, from: usize, to: usize) {
        let (f, t) = (g.node(from), g.node(to));
        g.add_arc(f, t, Rational::ONE, Rational::ONE);
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g = RatioGraph::new(5);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 0);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 3);
        arc(&mut g, 3, 4);
        arc(&mut g, 4, 2);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(g.node(0)), scc.component_of(g.node(1)));
        assert_eq!(scc.component_of(g.node(2)), scc.component_of(g.node(4)));
        assert_ne!(scc.component_of(g.node(0)), scc.component_of(g.node(2)));
        for index in 0..scc.component_count() {
            assert!(scc.is_cyclic_component(&g, index));
        }
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = RatioGraph::new(4);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 3);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 4);
        for index in 0..4 {
            assert!(!scc.is_cyclic_component(&g, index));
            assert_eq!(scc.component(index).len(), 1);
        }
    }

    #[test]
    fn self_loop_is_a_cyclic_component() {
        let mut g = RatioGraph::new(2);
        arc(&mut g, 0, 0);
        arc(&mut g, 0, 1);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 2);
        let self_loop_component = scc.component_of(g.node(0));
        assert!(scc.is_cyclic_component(&g, self_loop_component));
        assert!(!scc.is_cyclic_component(&g, scc.component_of(g.node(1))));
    }

    #[test]
    fn components_iterator_covers_all_nodes() {
        let mut g = RatioGraph::new(3);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 0);
        let scc = SccDecomposition::compute(&g);
        let total: usize = scc.components().map(<[NodeId]>::len).sum();
        assert_eq!(total, 3);
        assert_eq!(scc.component_count(), 1);
    }
}
