//! Strongly connected components (iterative Tarjan).
//!
//! Two entry points share one implementation:
//!
//! * [`SccDecomposition`] — the public, self-contained API (allocates its
//!   result vectors);
//! * [`SccBuffers`] — the solver-internal reusable state: flat member /
//!   offset arrays plus the Tarjan work stacks, all of which keep their
//!   allocation across [`SccBuffers::compute`] calls, so the K-Iter hot loop
//!   (one solve per iteration) performs no SCC allocation after warm-up.

use crate::graph::{Arc, ArcId, NodeId, RatioGraph};

/// Reusable strongly-connected-component state (see module docs). Components
/// are numbered in reverse topological order (Tarjan's output order) and the
/// member order matches the historical `Vec<Vec<NodeId>>` layout bit for bit,
/// which keeps every solver tie-break — and therefore every reported critical
/// circuit — identical to the pre-CSR implementation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SccBuffers {
    /// Component id per node.
    pub component_of: Vec<u32>,
    /// Flat member storage: `members[offsets[c] .. offsets[c + 1]]` are the
    /// nodes of component `c`.
    pub members: Vec<u32>,
    /// Component boundaries into `members` (`component_count + 1` entries).
    pub offsets: Vec<u32>,
    // Tarjan work state.
    index: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    call_stack: Vec<(u32, u32)>,
}

impl SccBuffers {
    /// Number of components found by the last [`SccBuffers::compute`].
    pub fn component_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Members of component `component` (global node indices).
    pub fn component(&self, component: usize) -> &[u32] {
        let lo = self.offsets[component] as usize;
        let hi = self.offsets[component + 1] as usize;
        &self.members[lo..hi]
    }

    /// Returns `true` when component `component` can hold a cycle: more than
    /// one node, or a single node with a self-arc (checked on the CSR view).
    pub fn is_cyclic_component(
        &self,
        component: usize,
        csr_offsets: &[u32],
        csr_index: &[ArcId],
        arcs: &[Arc],
    ) -> bool {
        let members = self.component(component);
        if members.len() > 1 {
            return true;
        }
        let node = members[0] as usize;
        csr_index[csr_offsets[node] as usize..csr_offsets[node + 1] as usize]
            .iter()
            .any(|&arc| arcs[arc.index()].to.index() == node)
    }

    /// Computes the strongly connected components of the graph described by
    /// the CSR adjacency (`csr_offsets`/`csr_index` over `arcs`), reusing
    /// every buffer.
    pub fn compute(
        &mut self,
        node_count: usize,
        csr_offsets: &[u32],
        csr_index: &[ArcId],
        arcs: &[Arc],
    ) {
        const UNVISITED: u32 = u32::MAX;
        self.index.clear();
        self.index.resize(node_count, UNVISITED);
        self.low.clear();
        self.low.resize(node_count, 0);
        self.on_stack.clear();
        self.on_stack.resize(node_count, false);
        self.stack.clear();
        self.call_stack.clear();
        self.component_of.clear();
        self.component_of.resize(node_count, UNVISITED);
        self.members.clear();
        self.offsets.clear();
        self.offsets.push(0);

        let mut next_index = 0u32;
        for start in 0..node_count {
            if self.index[start] != UNVISITED {
                continue;
            }
            self.call_stack.push((start as u32, csr_offsets[start]));
            self.index[start] = next_index;
            self.low[start] = next_index;
            next_index += 1;
            self.stack.push(start as u32);
            self.on_stack[start] = true;

            while let Some(&mut (node, ref mut arc_cursor)) = self.call_stack.last_mut() {
                let node = node as usize;
                if *arc_cursor < csr_offsets[node + 1] {
                    let arc_id = csr_index[*arc_cursor as usize];
                    *arc_cursor += 1;
                    let successor = arcs[arc_id.index()].to.index();
                    if self.index[successor] == UNVISITED {
                        self.index[successor] = next_index;
                        self.low[successor] = next_index;
                        next_index += 1;
                        self.stack.push(successor as u32);
                        self.on_stack[successor] = true;
                        self.call_stack
                            .push((successor as u32, csr_offsets[successor]));
                    } else if self.on_stack[successor] {
                        self.low[node] = self.low[node].min(self.index[successor]);
                    }
                } else {
                    self.call_stack.pop();
                    if let Some(&mut (parent, _)) = self.call_stack.last_mut() {
                        let parent = parent as usize;
                        self.low[parent] = self.low[parent].min(self.low[node]);
                    }
                    if self.low[node] == self.index[node] {
                        let component_id = self.component_count() as u32;
                        loop {
                            let member = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[member as usize] = false;
                            self.component_of[member as usize] = component_id;
                            self.members.push(member);
                            if member as usize == node {
                                break;
                            }
                        }
                        self.offsets.push(self.members.len() as u32);
                    }
                }
            }
        }
    }
}

/// The strongly connected components of a [`RatioGraph`].
///
/// Components are numbered in reverse topological order (Tarjan's output
/// order); every node belongs to exactly one component. This is the public
/// convenience API; the solver uses the reusable [`SccBuffers`] internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    component_of: Vec<usize>,
    components: Vec<Vec<NodeId>>,
}

impl SccDecomposition {
    /// Computes the strongly connected components of `graph`. Works whether
    /// or not the graph's own CSR adjacency is current (a temporary index is
    /// built when it is not).
    pub fn compute(graph: &RatioGraph) -> Self {
        let mut buffers = SccBuffers::default();
        let mut offsets = Vec::new();
        let mut index = Vec::new();
        let (csr_offsets, csr_index) = match graph.adjacency() {
            Some(adjacency) => adjacency,
            None => {
                crate::graph::build_csr(
                    graph.node_count(),
                    graph.raw_arcs(),
                    &mut offsets,
                    &mut index,
                );
                (offsets.as_slice(), index.as_slice())
            }
        };
        buffers.compute(graph.node_count(), csr_offsets, csr_index, graph.raw_arcs());
        let components = (0..buffers.component_count())
            .map(|component| {
                buffers
                    .component(component)
                    .iter()
                    .map(|&node| NodeId::new(node as usize))
                    .collect()
            })
            .collect();
        SccDecomposition {
            component_of: buffers
                .component_of
                .iter()
                .map(|&component| component as usize)
                .collect(),
            components,
        }
    }

    /// Component index of a node.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node.index()]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Members of component `index`.
    pub fn component(&self, index: usize) -> &[NodeId] {
        &self.components[index]
    }

    /// Iterator over all components.
    pub fn components(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.components.iter().map(Vec::as_slice)
    }

    /// Returns `true` when the component containing `node` can hold a cycle:
    /// it has more than one node, or its single node has a self-arc.
    pub fn is_cyclic_component(&self, graph: &RatioGraph, index: usize) -> bool {
        let members = &self.components[index];
        if members.len() > 1 {
            return true;
        }
        let node = members[0];
        // Use the CSR index when current (O(out-degree)); fall back to the
        // flat-arc scan only on a stale index.
        if let Some((offsets, arc_index)) = graph.adjacency() {
            return arc_index[offsets[node.index()] as usize..offsets[node.index() + 1] as usize]
                .iter()
                .any(|&arc| graph.arc(arc).to == node);
        }
        graph
            .arcs()
            .any(|(_, arc)| arc.from == node && arc.to == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::Rational;

    fn arc(g: &mut RatioGraph, from: usize, to: usize) {
        let (f, t) = (g.node(from), g.node(to));
        g.add_arc(f, t, Rational::ONE, Rational::ONE);
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g = RatioGraph::new(5);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 0);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 3);
        arc(&mut g, 3, 4);
        arc(&mut g, 4, 2);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(g.node(0)), scc.component_of(g.node(1)));
        assert_eq!(scc.component_of(g.node(2)), scc.component_of(g.node(4)));
        assert_ne!(scc.component_of(g.node(0)), scc.component_of(g.node(2)));
        for index in 0..scc.component_count() {
            assert!(scc.is_cyclic_component(&g, index));
        }
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = RatioGraph::new(4);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 3);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 4);
        for index in 0..4 {
            assert!(!scc.is_cyclic_component(&g, index));
            assert_eq!(scc.component(index).len(), 1);
        }
    }

    #[test]
    fn self_loop_is_a_cyclic_component() {
        let mut g = RatioGraph::new(2);
        arc(&mut g, 0, 0);
        arc(&mut g, 0, 1);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.component_count(), 2);
        let self_loop_component = scc.component_of(g.node(0));
        assert!(scc.is_cyclic_component(&g, self_loop_component));
        assert!(!scc.is_cyclic_component(&g, scc.component_of(g.node(1))));
    }

    #[test]
    fn components_iterator_covers_all_nodes() {
        let mut g = RatioGraph::new(3);
        arc(&mut g, 0, 1);
        arc(&mut g, 1, 2);
        arc(&mut g, 2, 0);
        let scc = SccDecomposition::compute(&g);
        let total: usize = scc.components().map(<[NodeId]>::len).sum();
        assert_eq!(total, 3);
        assert_eq!(scc.component_count(), 1);
    }

    /// The reusable buffers and the public decomposition agree on component
    /// numbering and member order (the solver's tie-breaks depend on it).
    #[test]
    fn buffers_match_public_decomposition() {
        let mut state = 0xDEC0DEu64 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let nodes = 1 + (next() % 12) as usize;
            let arcs_count = (next() % 30) as usize;
            let mut g = RatioGraph::new(nodes);
            for _ in 0..arcs_count {
                let from = (next() % nodes as u64) as usize;
                let to = (next() % nodes as u64) as usize;
                arc(&mut g, from, to);
            }
            let public = SccDecomposition::compute(&g);
            g.rebuild_adjacency();
            let (offsets, index) = g.adjacency().expect("just rebuilt");
            let mut buffers = SccBuffers::default();
            buffers.compute(g.node_count(), offsets, index, g.raw_arcs());
            assert_eq!(buffers.component_count(), public.component_count());
            for component in 0..public.component_count() {
                let expected: Vec<u32> = public
                    .component(component)
                    .iter()
                    .map(|node| node.index() as u32)
                    .collect();
                assert_eq!(buffers.component(component), expected.as_slice());
                assert_eq!(
                    buffers.is_cyclic_component(component, offsets, index, g.raw_arcs()),
                    public.is_cyclic_component(&g, component)
                );
            }
        }
    }
}
