//! Maximum cost-to-time ratio solvers and the solver-selection layer.
//!
//! Solves the Maximum Cost-to-time Ratio Problem (MCRP) of Dasdan, Irani and
//! Gupta (reference [5] of the paper): given a directed graph whose arcs carry
//! a cost `L(e)` and a time `H(e)`, compute
//! `λ = max_{c ∈ C(G)} ΣL(c) / ΣH(c)` together with a critical circuit.
//!
//! Two exact algorithms are provided, selectable through [`SolverChoice`]:
//!
//! * the **parametric** method: starting from `λ = 0` it repeatedly searches,
//!   with a Bellman–Ford longest-walk pass over lexicographic weights
//!   `(L(e) − λ·H(e), −H(e))`, for a circuit whose reduced weight is positive.
//!   Every circuit found strictly increases `λ` (or proves the instance
//!   infeasible when its total time is not positive), so the iteration
//!   terminates on the exact maximum ratio over the finite set of simple
//!   circuits.
//! * **Howard's policy iteration** ([`crate::howard`]): the practical fast
//!   solver for large event graphs. It converges in a handful of policy
//!   improvements and hands its estimate to the parametric certifier whenever
//!   its cheap optimality certificate does not apply, so its results are
//!   always identical to the parametric method's.
//!
//! All arithmetic is exact rational arithmetic; `f64` is never consulted.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use csdf::{Rational, RationalError};

use crate::cancel::CancelToken;
use crate::chunked::{self, ChunkScratch, IntraOpts};
use crate::graph::{build_csr, ArcId, NodeId, RatioGraph};
use crate::howard::{self, HowardOutcome};
use crate::kernel;
use crate::scc::SccBuffers;

/// Errors raised by the MCRP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McrError {
    /// Exact rational arithmetic overflowed.
    Rational(RationalError),
    /// Internal invariant violation (a found circuit failed to strictly
    /// increase `λ`). This cannot happen for well-formed inputs; the variant
    /// is kept so that the defensive check fails loudly instead of looping.
    IterationLimit,
    /// The solve observed a cancelled [`CancelToken`] (explicit cancellation
    /// or an elapsed deadline) and bailed out cooperatively.
    Cancelled,
}

impl fmt::Display for McrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McrError::Rational(err) => write!(f, "{err}"),
            McrError::IterationLimit => write!(f, "cycle ratio solver failed to make progress"),
            McrError::Cancelled => {
                write!(f, "cycle ratio solve was cancelled before completion")
            }
        }
    }
}

impl std::error::Error for McrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McrError::Rational(err) => Some(err),
            McrError::IterationLimit | McrError::Cancelled => None,
        }
    }
}

impl From<RationalError> for McrError {
    fn from(err: RationalError) -> Self {
        McrError::Rational(err)
    }
}

/// A circuit of the ratio graph together with its accumulated cost and time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Arcs of the circuit, in traversal order.
    pub arcs: Vec<ArcId>,
    /// Nodes of the circuit, in traversal order (`nodes[i]` is the source of
    /// `arcs[i]`).
    pub nodes: Vec<NodeId>,
    /// Total cost `ΣL(c)`.
    pub cost: Rational,
    /// Total time `ΣH(c)`.
    pub time: Rational,
}

impl CriticalCycle {
    /// The cost-to-time ratio of the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the total time is zero.
    pub fn ratio(&self) -> Result<Rational, RationalError> {
        self.cost.checked_div(&self.time)
    }

    /// Number of arcs in the circuit.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Returns `true` for an empty circuit (never produced by the solver).
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }
}

/// Outcome of [`maximum_cycle_ratio`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleRatioOutcome {
    /// The graph has no circuit at all.
    Acyclic,
    /// Circuits exist but none has a positive ratio: the ratio problem does
    /// not constrain the period (all circuit costs are zero).
    NonPositive,
    /// The maximum ratio is finite and positive; `cycle` is a critical
    /// circuit attaining it.
    Finite {
        /// The maximum cost-to-time ratio `λ`.
        ratio: Rational,
        /// A circuit attaining the maximum.
        cycle: CriticalCycle,
    },
    /// A circuit with positive cost and non-positive time exists: the ratio is
    /// unbounded (for throughput evaluation this means no periodic schedule
    /// exists for the given periodicity vector).
    Infinite {
        /// The offending circuit.
        cycle: CriticalCycle,
    },
}

impl CycleRatioOutcome {
    /// The finite maximum ratio, if any.
    pub fn ratio(&self) -> Option<Rational> {
        match self {
            CycleRatioOutcome::Finite { ratio, .. } => Some(*ratio),
            _ => None,
        }
    }

    /// The critical circuit, if the outcome carries one.
    pub fn cycle(&self) -> Option<&CriticalCycle> {
        match self {
            CycleRatioOutcome::Finite { cycle, .. } | CycleRatioOutcome::Infinite { cycle } => {
                Some(cycle)
            }
            _ => None,
        }
    }
}

/// Which algorithm a [`Solver`] runs on each strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverChoice {
    /// Pick per component: Howard's policy iteration for components with at
    /// least [`AUTO_HOWARD_MIN_NODES`] nodes, the parametric method below.
    /// This is the recommended default and what K-Iter uses.
    #[default]
    Auto,
    /// The parametric Bellman–Ford method, unconditionally.
    Parametric,
    /// Howard's policy iteration, unconditionally (falls back to the
    /// parametric certifier in situations its optimality certificate does not
    /// cover; results are always identical to [`SolverChoice::Parametric`]).
    Howard,
    /// Karp's dynamic program. Only applicable to components in which every
    /// arc time equals one (the cycle-*mean* special case); other components
    /// silently use the parametric method.
    Karp,
}

/// Component size at which [`SolverChoice::Auto`] switches from the
/// parametric method to Howard's policy iteration.
///
/// Head-to-head benchmarks (`benches/mcr_solvers`) show Howard ahead from a
/// handful of nodes already — each λ-round of the parametric method costs
/// `Θ(n)` Bellman–Ford relaxation sweeps while Howard converges in a few
/// policy improvements — so only trivial components stay parametric.
pub const AUTO_HOWARD_MIN_NODES: usize = 4;

/// Component size at which a multi-threaded [`Solver`] switches from the
/// per-SCC worker pool to *intra-component* chunked kernels (see
/// [`crate::chunked`]): when the largest cyclic strongly connected component
/// has at least this many nodes, the solve runs sequentially over components
/// and chunks each big component's sweeps instead — one giant SCC is exactly
/// the shape the per-SCC pool cannot help with. Outputs are bit-identical
/// either way; the threshold only moves work between the two strategies.
pub const INTRA_MIN_NODES: usize = 2048;

/// Cached `std::thread::available_parallelism()` (it can cost a syscall per
/// query on Linux; the answer does not change within a process).
fn host_parallelism() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Per-solve intra-component parallelism plan, derived once from the solver
/// knobs and the component size distribution.
#[derive(Debug, Clone, Copy)]
struct IntraSolveConfig {
    /// Chunks per sweep for components that cross `min_nodes` (`1` disables).
    threads: usize,
    /// Minimum component size for chunked kernels.
    min_nodes: usize,
    /// Whether chunks run on scoped worker threads (disabled on single-core
    /// hosts — the chunked code path still runs, inline, with identical
    /// results, so determinism never depends on this).
    spawn: bool,
}

impl IntraSolveConfig {
    const SERIAL: IntraSolveConfig = IntraSolveConfig {
        threads: 1,
        min_nodes: usize::MAX,
        spawn: false,
    };
}

/// Resolves [`SolverChoice::Auto`] for a component of `n` nodes.
fn effective_choice(choice: SolverChoice, n: usize) -> SolverChoice {
    match choice {
        SolverChoice::Auto => {
            if n >= AUTO_HOWARD_MIN_NODES {
                SolverChoice::Howard
            } else {
                SolverChoice::Parametric
            }
        }
        other => other,
    }
}

/// A reusable maximum cycle ratio solver.
///
/// The solver owns scratch buffers (CSR adjacency, SCC decomposition,
/// component views, Bellman–Ford state, policy-iteration state) that are
/// reused across [`Solver::solve`] calls, so repeated solves — the K-Iter hot
/// path performs one per iteration — do not reallocate.
///
/// With [`Solver::with_threads`] (or [`Solver::set_threads`]) greater than
/// one, independent cyclic strongly connected components are solved in
/// parallel on a `std::thread::scope` worker pool, one long-lived scratch per
/// worker; the per-component results are merged in component order, so the
/// outcome is byte-for-byte identical to the sequential solve.
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, Solver, SolverChoice, CycleRatioOutcome};
/// use csdf::Rational;
///
/// let mut graph = RatioGraph::new(2);
/// let (a, b) = (graph.node(0), graph.node(1));
/// graph.add_arc(a, b, Rational::from_integer(3), Rational::from_integer(1));
/// graph.add_arc(b, a, Rational::from_integer(1), Rational::from_integer(1));
///
/// let mut solver = Solver::new(SolverChoice::Howard);
/// let outcome = solver.solve(&graph)?;
/// assert_eq!(outcome.ratio(), Some(Rational::from_integer(2)));
/// # Ok::<(), mcr::McrError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    choice: SolverChoice,
    threads: usize,
    integer_kernel: bool,
    /// Component size threshold for intra-component chunked kernels
    /// ([`INTRA_MIN_NODES`] by default; the test hook
    /// [`Solver::set_intra_min_nodes`] lowers it to exercise the chunked
    /// path on small graphs).
    intra_min_nodes: usize,
    /// Forces chunk execution onto scoped worker threads even on single-core
    /// hosts (test hook; results are identical either way).
    intra_spawn_force: bool,
    cancel: CancelToken,
    scratch: Scratch,
    /// One extra scratch per additional worker thread (lazily grown, kept
    /// warm across solves).
    worker_scratches: Vec<Scratch>,
    /// Reusable SCC state and CSR adjacency for graphs whose own index is
    /// stale.
    scc: SccBuffers,
    csr_offsets: Vec<u32>,
    csr_index: Vec<ArcId>,
    /// Indices of the cyclic components of the current solve.
    cyclic: Vec<u32>,
}

impl Solver {
    /// Creates a solver running the given algorithm, single-threaded, with
    /// the integer Howard kernel enabled.
    pub fn new(choice: SolverChoice) -> Self {
        Solver {
            choice,
            threads: 1,
            integer_kernel: true,
            intra_min_nodes: INTRA_MIN_NODES,
            intra_spawn_force: false,
            cancel: CancelToken::default(),
            scratch: Scratch::default(),
            worker_scratches: Vec::new(),
            scc: SccBuffers::default(),
            csr_offsets: Vec::new(),
            csr_index: Vec::new(),
            cyclic: Vec::new(),
        }
    }

    /// Sets the number of worker threads used to solve independent cyclic
    /// strongly connected components in parallel (builder form). `0` is
    /// treated as `1`; results are identical for every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the number of worker threads (see [`Solver::with_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables the integer-numerator Howard kernel (builder
    /// form). On by default; disabling forces the scalar [`Rational`] path.
    /// Results are bit-identical either way — the knob exists for the
    /// property tests that pin that equivalence and for benchmarking.
    #[must_use]
    pub fn with_integer_kernel(mut self, enabled: bool) -> Self {
        self.integer_kernel = enabled;
        self
    }

    /// The configured algorithm choice.
    pub fn choice(&self) -> SolverChoice {
        self.choice
    }

    /// Installs a cancellation token polled once per policy-iteration /
    /// Bellman–Ford round of subsequent solves. A cancelled solve returns
    /// [`McrError::Cancelled`]; the solver and all its scratch buffers stay
    /// reusable afterwards. Pass [`CancelToken::default`] to detach.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Lowers the component-size threshold for the intra-component chunked
    /// kernels (default [`INTRA_MIN_NODES`]). Outputs are bit-identical at
    /// every value; this hook exists so tests and benchmarks can force the
    /// chunked path on small graphs.
    #[doc(hidden)]
    pub fn set_intra_min_nodes(&mut self, nodes: usize) {
        self.intra_min_nodes = nodes.max(1);
    }

    /// Forces chunk execution onto scoped worker threads even when the host
    /// reports a single core. Results are identical either way; this hook
    /// exists so tests can exercise the real spawn path deterministically.
    #[doc(hidden)]
    pub fn set_intra_spawn_force(&mut self, force: bool) {
        self.intra_spawn_force = force;
    }

    /// Computes the maximum cost-to-time ratio of `graph` and a critical
    /// circuit. Identical results for every [`SolverChoice`] and thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`McrError::Rational`] if the exact arithmetic overflows
    /// `i128`.
    ///
    /// # Panics
    ///
    /// Panics only if a parallel component worker itself panicked or the
    /// per-component bookkeeping invariant breaks.
    pub fn solve(&mut self, graph: &RatioGraph) -> Result<CycleRatioOutcome, McrError> {
        if self.cancel.is_cancelled() {
            return Err(McrError::Cancelled);
        }
        self.scratch.cancel = self.cancel.clone();
        let arcs = graph.raw_arcs();
        // Adjacency: borrow the graph's CSR index when current (the arena
        // rebuilds it after every patch), otherwise build one into the
        // solver-owned arrays (kept warm across solves).
        let (offsets, index): (&[u32], &[ArcId]) = match graph.adjacency() {
            Some(adjacency) => adjacency,
            None => {
                build_csr(
                    graph.node_count(),
                    arcs,
                    &mut self.csr_offsets,
                    &mut self.csr_index,
                );
                (&self.csr_offsets, &self.csr_index)
            }
        };
        self.scc.compute(graph.node_count(), offsets, index, arcs);
        self.cyclic.clear();
        for component in 0..self.scc.component_count() {
            if self
                .scc
                .is_cyclic_component(component, offsets, index, arcs)
            {
                self.cyclic.push(component as u32);
            }
        }
        if self.cyclic.is_empty() {
            return Ok(CycleRatioOutcome::Acyclic);
        }

        // Intra-component parallelism takes priority over the per-SCC worker
        // pool: when the largest cyclic component crosses the threshold, the
        // solve runs sequentially over components and chunks each big
        // component's sweeps instead (one giant SCC is exactly the shape the
        // per-SCC pool cannot help with). Outputs are identical either way.
        let largest = self
            .cyclic
            .iter()
            .map(|&component| self.scc.component(component as usize).len())
            .max()
            .unwrap_or(0);
        let intra = if self.threads >= 2 && largest >= self.intra_min_nodes {
            IntraSolveConfig {
                threads: self.threads,
                min_nodes: self.intra_min_nodes,
                spawn: self.intra_spawn_force || host_parallelism() >= 2,
            }
        } else {
            IntraSolveConfig::SERIAL
        };
        let worker_count = if intra.threads >= 2 {
            1
        } else {
            self.threads.min(self.cyclic.len())
        };
        if worker_count <= 1 {
            return solve_sequential(
                graph,
                offsets,
                index,
                &self.scc,
                &self.cyclic,
                &mut self.scratch,
                self.choice,
                self.integer_kernel,
                intra,
            );
        }

        // Parallel path: one scoped worker per extra thread plus the calling
        // thread, pulling cyclic components off a shared atomic cursor. Each
        // worker keeps its own long-lived scratch; results are merged in
        // component order below, so scheduling cannot affect the outcome.
        // Grow-only: a solve with fewer cyclic components must not drop the
        // warm scratches a wider earlier solve built up.
        if self.worker_scratches.len() < worker_count - 1 {
            self.worker_scratches
                .resize_with(worker_count - 1, Scratch::default);
        }
        for scratch in &mut self.worker_scratches {
            scratch.cancel = self.cancel.clone();
        }
        let scc = &self.scc;
        let cyclic = &self.cyclic;
        let choice = self.choice;
        let integer_kernel = self.integer_kernel;
        let next = AtomicUsize::new(0);
        let main_scratch = &mut self.scratch;
        let mut outcomes: Vec<Vec<(usize, Result<ComponentOutcome, McrError>)>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(worker_count - 1);
                for scratch in self.worker_scratches.iter_mut().take(worker_count - 1) {
                    let next = &next;
                    handles.push(scope.spawn(move || {
                        worker_loop(
                            graph,
                            offsets,
                            index,
                            scc,
                            cyclic,
                            next,
                            choice,
                            integer_kernel,
                            scratch,
                        )
                    }));
                }
                let mut collected = vec![worker_loop(
                    graph,
                    offsets,
                    index,
                    scc,
                    cyclic,
                    &next,
                    choice,
                    integer_kernel,
                    main_scratch,
                )];
                for handle in handles {
                    collected.push(handle.join().expect("solver worker panicked"));
                }
                collected
            });

        // Deterministic merge: place every per-component outcome in its slot,
        // then replay them in component order with exactly the sequential
        // rules (first error or Infinite in component order wins; ties on the
        // maximum ratio keep the earliest component).
        let mut slots: Vec<Option<Result<ComponentOutcome, McrError>>> =
            (0..cyclic.len()).map(|_| None).collect();
        for outcomes in &mut outcomes {
            for (slot, outcome) in outcomes.drain(..) {
                slots[slot] = Some(outcome);
            }
        }
        let mut best: Option<(Rational, CriticalCycle)> = None;
        for slot in &mut slots {
            match slot.take().expect("every cyclic component is solved")? {
                ComponentOutcome::NonPositive => {}
                ComponentOutcome::Finite { ratio, cycle } => {
                    if best.as_ref().map_or(true, |(r, _)| ratio > *r) {
                        best = Some((ratio, cycle));
                    }
                }
                ComponentOutcome::Infinite { cycle } => {
                    return Ok(CycleRatioOutcome::Infinite { cycle });
                }
            }
        }
        Ok(match best {
            Some((ratio, cycle)) => CycleRatioOutcome::Finite { ratio, cycle },
            None => CycleRatioOutcome::NonPositive,
        })
    }
}

/// The sequential solve loop over the cyclic components (also the
/// single-worker fast path of the parallel solver).
#[allow(clippy::too_many_arguments)]
fn solve_sequential(
    graph: &RatioGraph,
    offsets: &[u32],
    index: &[ArcId],
    scc: &SccBuffers,
    cyclic: &[u32],
    scratch: &mut Scratch,
    choice: SolverChoice,
    integer_kernel: bool,
    intra: IntraSolveConfig,
) -> Result<CycleRatioOutcome, McrError> {
    scratch.prepare(graph.node_count());
    let mut best: Option<(Rational, CriticalCycle)> = None;
    for &component in cyclic {
        let members = scc.component(component as usize);
        let n = members.len();
        let opts = IntraOpts {
            workers: if intra.threads >= 2 && n >= intra.min_nodes {
                intra.threads
            } else {
                1
            },
            spawn: intra.spawn,
        };
        // Lean loading: the chunked integer kernel reads arc weights straight
        // from the graph through the component's arc-id map, so the per-arc
        // Rational copies of the component view are skipped until a fallback
        // path actually needs them (see `ensure_component_rationals`).
        let lean = opts.workers >= 2
            && integer_kernel
            && effective_choice(choice, n) == SolverChoice::Howard;
        scratch.begin_component(graph, members, offsets, index, !lean);
        let outcome = solve_component(graph, scratch, choice, integer_kernel, n, opts);
        scratch.end_component(members);
        match outcome? {
            ComponentOutcome::NonPositive => {}
            ComponentOutcome::Finite { ratio, cycle } => {
                if best.as_ref().map_or(true, |(r, _)| ratio > *r) {
                    best = Some((ratio, cycle));
                }
            }
            ComponentOutcome::Infinite { cycle } => {
                return Ok(CycleRatioOutcome::Infinite { cycle });
            }
        }
    }
    Ok(match best {
        Some((ratio, cycle)) => CycleRatioOutcome::Finite { ratio, cycle },
        None => CycleRatioOutcome::NonPositive,
    })
}

/// One parallel worker: pulls cyclic-component slots off the shared cursor
/// until none remain, solving each on its own scratch. Every component is
/// always solved — there is no early abort — so the merge sees a complete,
/// scheduling-independent result set.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    graph: &RatioGraph,
    offsets: &[u32],
    index: &[ArcId],
    scc: &SccBuffers,
    cyclic: &[u32],
    next: &AtomicUsize,
    choice: SolverChoice,
    integer_kernel: bool,
    scratch: &mut Scratch,
) -> Vec<(usize, Result<ComponentOutcome, McrError>)> {
    let mut outcomes = Vec::new();
    scratch.prepare(graph.node_count());
    loop {
        let slot = next.fetch_add(1, Ordering::Relaxed);
        if slot >= cyclic.len() {
            break;
        }
        let members = scc.component(cyclic[slot] as usize);
        scratch.begin_component(graph, members, offsets, index, true);
        let outcome = solve_component(
            graph,
            scratch,
            choice,
            integer_kernel,
            members.len(),
            IntraOpts::SERIAL,
        );
        scratch.end_component(members);
        outcomes.push((slot, outcome));
    }
    outcomes
}

/// Dispatches one strongly connected component (loaded in `scratch`) to the
/// selected algorithm.
fn solve_component(
    graph: &RatioGraph,
    scratch: &mut Scratch,
    choice: SolverChoice,
    integer_kernel: bool,
    n: usize,
    intra: IntraOpts,
) -> Result<ComponentOutcome, McrError> {
    let choice = effective_choice(choice, n);
    match choice {
        SolverChoice::Parametric | SolverChoice::Auto => {
            parametric_component(graph, scratch, n, Rational::ZERO, None, intra)
        }
        SolverChoice::Howard => {
            // The integer kernel handles the common case (component-wide
            // common denominators that keep every product inside i128) and
            // declines otherwise; the scalar path is the universal fallback.
            // Outcomes are bit-identical — see `kernel` module docs. With
            // `intra.workers >= 2` the chunked twins run instead, which are
            // bit-identical to the serial kernels by construction (see
            // `crate::chunked`).
            let outcome = if intra.workers >= 2 {
                if integer_kernel {
                    match chunked::howard_component_int_chunked(graph, scratch, n, intra) {
                        Some(outcome) => outcome,
                        None => {
                            scratch.ensure_component_rationals(graph);
                            chunked::howard_component_chunked(scratch, n, intra)
                        }
                    }
                } else {
                    chunked::howard_component_chunked(scratch, n, intra)
                }
            } else if integer_kernel {
                kernel::howard_component_int(scratch, n)
                    .unwrap_or_else(|| howard::howard_component(scratch, n))
            } else {
                howard::howard_component(scratch, n)
            };
            match outcome {
                HowardOutcome::Infinite { positions } => {
                    let cycle = materialize_cycle(graph, scratch, &positions)?;
                    Ok(ComponentOutcome::Infinite { cycle })
                }
                HowardOutcome::Certified { lambda, positions } => {
                    let cycle = materialize_cycle(graph, scratch, &positions)?;
                    Ok(ComponentOutcome::Finite {
                        ratio: lambda,
                        cycle,
                    })
                }
                HowardOutcome::Estimate { lambda, positions } => {
                    scratch.ensure_component_rationals(graph);
                    parametric_component(graph, scratch, n, lambda, Some(positions), intra)
                }
                HowardOutcome::Bail => {
                    scratch.ensure_component_rationals(graph);
                    parametric_component(graph, scratch, n, Rational::ZERO, None, intra)
                }
            }
        }
        SolverChoice::Karp => karp_component(graph, scratch, n, intra),
    }
}

/// Computes the maximum cost-to-time ratio of `graph` and a critical circuit
/// with the parametric method (see [`Solver`] / [`SolverChoice`] for the
/// algorithm selection layer and Howard's policy iteration).
///
/// # Errors
///
/// Returns [`McrError::Rational`] if the exact arithmetic overflows `i128`.
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, maximum_cycle_ratio, CycleRatioOutcome};
/// use csdf::Rational;
///
/// // Two circuits: ratio 3/1 and ratio 5/4; the maximum is 3.
/// let mut graph = RatioGraph::new(3);
/// let (a, b, c) = (graph.node(0), graph.node(1), graph.node(2));
/// graph.add_arc(a, a, Rational::from_integer(3), Rational::from_integer(1));
/// graph.add_arc(b, c, Rational::from_integer(2), Rational::from_integer(3));
/// graph.add_arc(c, b, Rational::from_integer(3), Rational::from_integer(1));
/// match maximum_cycle_ratio(&graph)? {
///     CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, Rational::from_integer(3)),
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), mcr::McrError>(())
/// ```
pub fn maximum_cycle_ratio(graph: &RatioGraph) -> Result<CycleRatioOutcome, McrError> {
    Solver::new(SolverChoice::Parametric).solve(graph)
}

/// One-shot solve with an explicit [`SolverChoice`] (allocates fresh scratch
/// buffers; prefer a long-lived [`Solver`] for repeated solves).
///
/// # Errors
///
/// Returns [`McrError::Rational`] if the exact arithmetic overflows `i128`.
pub fn maximum_cycle_ratio_with(
    graph: &RatioGraph,
    choice: SolverChoice,
) -> Result<CycleRatioOutcome, McrError> {
    Solver::new(choice).solve(graph)
}

pub(crate) enum ComponentOutcome {
    NonPositive,
    Finite {
        ratio: Rational,
        cycle: CriticalCycle,
    },
    Infinite {
        cycle: CriticalCycle,
    },
}

/// Reusable per-solve state shared by the parametric method and Howard's
/// policy iteration. One strongly connected component at a time is loaded
/// into the dense "component view" (`arc_*`, `first`); stamp-based marker
/// arrays avoid `O(n)` clears between uses.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    // Component view: arcs grouped by (local) source node, CSR layout.
    local_of: Vec<usize>,
    pub(crate) arc_from: Vec<u32>,
    pub(crate) arc_to: Vec<u32>,
    pub(crate) arc_cost: Vec<Rational>,
    pub(crate) arc_time: Vec<Rational>,
    pub(crate) arc_id: Vec<ArcId>,
    pub(crate) first: Vec<usize>,
    /// Whether `arc_cost`/`arc_time` hold the current component's weights
    /// (lean loads skip them; see [`Scratch::ensure_component_rationals`]).
    rationals_loaded: bool,
    /// Bumped on every `begin_component`, so derived per-component caches
    /// (the chunked kernels' reverse CSR) know when to rebuild.
    pub(crate) component_epoch: u64,
    // Parametric Bellman–Ford state.
    pub(crate) reduced: Vec<(Rational, Rational)>,
    pub(crate) distance: Vec<(Rational, Rational)>,
    predecessor: Vec<usize>,
    active: Vec<usize>,
    next_active: Vec<usize>,
    in_next: Vec<bool>,
    // Howard policy-iteration state.
    pub(crate) policy: Vec<usize>,
    pub(crate) gain: Vec<Rational>,
    pub(crate) value: Vec<Rational>,
    // Integer Howard kernel state (see `crate::kernel`): arc costs/times as
    // integer numerators over component-wide common denominators, gains as
    // canonical reduced fractions, values as numerators over the gain
    // denominator.
    pub(crate) int_cost: Vec<i128>,
    pub(crate) int_time: Vec<i128>,
    pub(crate) int_gain_num: Vec<i128>,
    pub(crate) int_gain_den: Vec<i128>,
    pub(crate) int_value: Vec<i128>,
    // Stamped marker arrays shared by cycle walks/scans (valid when the entry
    // equals the current `epoch`).
    pub(crate) mark: Vec<u64>,
    pub(crate) mark_pos: Vec<usize>,
    pub(crate) resolved: Vec<u64>,
    pub(crate) walk: Vec<usize>,
    pub(crate) epoch: u64,
    /// Reusable buffers of the intra-component chunked kernels.
    pub(crate) chunk: ChunkScratch,
    /// Cancellation token polled once per solver round — and, in the chunked
    /// kernels, once per chunk and every few thousand items within a chunk
    /// (see [`Solver::set_cancel_token`]); the default token never cancels.
    pub(crate) cancel: CancelToken,
}

impl Scratch {
    /// Prepares the graph-sized renumbering table for a new solve.
    fn prepare(&mut self, node_count: usize) {
        if self.local_of.len() < node_count {
            self.local_of.resize(node_count, usize::MAX);
        }
    }

    /// Loads one component into the dense view, reading adjacency from the
    /// CSR slices (`offsets`/`index`). Arcs are grouped by source node simply
    /// by scanning members in order. With `load_rationals` false the per-arc
    /// `Rational` weight copies are skipped (the chunked integer kernel reads
    /// weights straight from the graph through `arc_id`); any path that needs
    /// them calls [`Scratch::ensure_component_rationals`] first.
    fn begin_component(
        &mut self,
        graph: &RatioGraph,
        members: &[u32],
        offsets: &[u32],
        index: &[ArcId],
        load_rationals: bool,
    ) {
        self.component_epoch = self.component_epoch.wrapping_add(1);
        let n = members.len();
        for (local, &node) in members.iter().enumerate() {
            self.local_of[node as usize] = local;
        }
        self.arc_from.clear();
        self.arc_to.clear();
        self.arc_cost.clear();
        self.arc_time.clear();
        self.arc_id.clear();
        self.first.clear();
        self.first.reserve(n + 1);
        for (local, &node) in members.iter().enumerate() {
            let node = node as usize;
            self.first.push(self.arc_to.len());
            for &arc_id in &index[offsets[node] as usize..offsets[node + 1] as usize] {
                let arc = graph.arc(arc_id);
                let to = self.local_of[arc.to.index()];
                if to == usize::MAX {
                    continue;
                }
                self.arc_from.push(local as u32);
                self.arc_to.push(to as u32);
                if load_rationals {
                    self.arc_cost.push(arc.cost);
                    self.arc_time.push(arc.time);
                }
                self.arc_id.push(arc_id);
            }
        }
        self.first.push(self.arc_to.len());
        self.rationals_loaded = load_rationals;
        // Node-sized state used by both algorithms.
        grow_stamped(&mut self.mark, n);
        grow_stamped(&mut self.resolved, n);
        if self.mark_pos.len() < n {
            self.mark_pos.resize(n, 0);
        }
    }

    /// Fills `arc_cost`/`arc_time` for the current component after a lean
    /// `begin_component`. The arcs were discovered in `arc_id` order, so the
    /// filled view is byte-identical to a non-lean load.
    pub(crate) fn ensure_component_rationals(&mut self, graph: &RatioGraph) {
        if self.rationals_loaded {
            return;
        }
        self.arc_cost.clear();
        self.arc_time.clear();
        self.arc_cost.reserve(self.arc_id.len());
        self.arc_time.reserve(self.arc_id.len());
        for &arc_id in &self.arc_id {
            let arc = graph.arc(arc_id);
            self.arc_cost.push(arc.cost);
            self.arc_time.push(arc.time);
        }
        self.rationals_loaded = true;
    }

    /// Restores the renumbering table after a component is done.
    fn end_component(&mut self, members: &[u32]) {
        for &node in members {
            self.local_of[node as usize] = usize::MAX;
        }
    }

    /// Number of arcs in the current component view.
    pub(crate) fn arc_len(&self) -> usize {
        self.arc_to.len()
    }
}

fn grow_stamped(buffer: &mut Vec<u64>, n: usize) {
    if buffer.len() < n {
        buffer.resize(n, 0);
    }
}

/// Builds a [`CriticalCycle`] from arc positions of the current component
/// view, recomputing the exact cost and time sums.
pub(crate) fn materialize_cycle(
    graph: &RatioGraph,
    scratch: &Scratch,
    positions: &[usize],
) -> Result<CriticalCycle, McrError> {
    let arcs: Vec<ArcId> = positions.iter().map(|&p| scratch.arc_id[p]).collect();
    let nodes: Vec<NodeId> = arcs.iter().map(|&arc| graph.arc(arc).from).collect();
    let (cost, time) = graph.path_weight(&arcs)?;
    Ok(CriticalCycle {
        arcs,
        nodes,
        cost,
        time,
    })
}

/// Parametric iteration restricted to one strongly connected component,
/// seeded with a lower bound `λ` and (optionally) a circuit attaining it.
///
/// The iteration needs no a-priori bound: every violating circuit found has
/// strictly larger ratio than the current `λ` (or non-positive time, which
/// settles the component as `Infinite`), and `λ` ranges over the finite set
/// of simple-circuit ratios, so the loop terminates on the exact maximum.
/// The strict-increase invariant is checked defensively on every round.
pub(crate) fn parametric_component(
    graph: &RatioGraph,
    scratch: &mut Scratch,
    n: usize,
    start: Rational,
    start_cycle: Option<Vec<usize>>,
    intra: IntraOpts,
) -> Result<ComponentOutcome, McrError> {
    let mut lambda = start;
    let mut best = start_cycle;
    loop {
        let found = if intra.workers >= 2 {
            chunked::find_violating_cycle_chunked(scratch, n, lambda, intra)?
        } else {
            find_violating_cycle(scratch, n, lambda)?
        };
        let Some(positions) = found else {
            return Ok(match best {
                Some(positions) => ComponentOutcome::Finite {
                    ratio: lambda,
                    cycle: materialize_cycle(graph, scratch, &positions)?,
                },
                None => ComponentOutcome::NonPositive,
            });
        };
        let cycle = materialize_cycle(graph, scratch, &positions)?;
        if !cycle.time.is_positive() {
            return Ok(ComponentOutcome::Infinite { cycle });
        }
        let ratio = cycle.cost.checked_div(&cycle.time)?;
        if ratio <= lambda {
            // A violating circuit with positive time always has ratio > λ;
            // failing this invariant would mean a bug in the cycle search,
            // so fail loudly rather than looping forever.
            return Err(McrError::IterationLimit);
        }
        lambda = ratio;
        best = Some(positions);
    }
}

/// Searches the component for a circuit whose reduced weight
/// `(ΣL − λΣH, −ΣH)` is lexicographically positive, as arc positions of the
/// component view. Returns `None` when no such circuit exists (λ is an upper
/// bound of all finite circuit ratios); the Bellman–Ford distances are left
/// converged in `scratch.distance` in that case.
pub(crate) fn find_violating_cycle(
    scratch: &mut Scratch,
    n: usize,
    lambda: Rational,
) -> Result<Option<Vec<usize>>, McrError> {
    let m = scratch.arc_len();
    scratch.reduced.clear();
    scratch.reduced.reserve(m);
    for position in 0..m {
        let reduced = scratch.arc_cost[position]
            .checked_sub(&lambda.checked_mul(&scratch.arc_time[position])?)?;
        let negative_time = scratch.arc_time[position].checked_neg()?;
        scratch.reduced.push((reduced, negative_time));
    }

    scratch.distance.clear();
    scratch.distance.resize(n, (Rational::ZERO, Rational::ZERO));
    scratch.predecessor.clear();
    scratch.predecessor.resize(n, usize::MAX);
    if scratch.in_next.len() < n {
        scratch.in_next.resize(n, false);
    }
    scratch.active.clear();
    scratch.active.extend(0..n);
    scratch.next_active.clear();

    // Level-synchronous Bellman–Ford with an active set: after round `k` the
    // distances are the maximum reduced weights over walks of at most `k`
    // arcs. If no circuit has positive reduced weight, walks longer than `n`
    // arcs cannot improve on shorter ones and the active set empties by round
    // `n + 1`. If improvements continue past round `n`, a positive circuit
    // exists and the predecessor graph acquires a circuit (distances are
    // bounded by the maximum simple-walk weight while it is acyclic), which
    // the full predecessor scan then extracts.
    let mut round = 0usize;
    loop {
        if scratch.cancel.is_cancelled() {
            return Err(McrError::Cancelled);
        }
        for active_index in 0..scratch.active.len() {
            let node = scratch.active[active_index];
            for position in scratch.first[node]..scratch.first[node + 1] {
                let to = scratch.arc_to[position] as usize;
                let candidate = (
                    scratch.distance[node]
                        .0
                        .checked_add(&scratch.reduced[position].0)?,
                    scratch.distance[node]
                        .1
                        .checked_add(&scratch.reduced[position].1)?,
                );
                if lex_greater(&candidate, &scratch.distance[to]) {
                    scratch.distance[to] = candidate;
                    scratch.predecessor[to] = position;
                    if !scratch.in_next[to] {
                        scratch.in_next[to] = true;
                        scratch.next_active.push(to);
                    }
                }
            }
        }
        for &node in &scratch.next_active {
            scratch.in_next[node] = false;
        }
        if scratch.next_active.is_empty() {
            return Ok(None);
        }
        round += 1;
        if round >= n {
            if let Some(positions) = scan_predecessor_cycle(scratch, n) {
                scratch.next_active.clear();
                return Ok(Some(positions));
            }
        }
        std::mem::swap(&mut scratch.active, &mut scratch.next_active);
        scratch.next_active.clear();
    }
}

pub(crate) fn lex_greater(a: &(Rational, Rational), b: &(Rational, Rational)) -> bool {
    match a.0.cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 > b.1,
    }
}

/// Scans the whole predecessor graph for a circuit, in `O(n)` via stamped
/// three-state marking. Returns the circuit's arc positions in traversal
/// order, or `None` while the predecessor graph is still a forest.
fn scan_predecessor_cycle(scratch: &mut Scratch, n: usize) -> Option<Vec<usize>> {
    scratch.epoch += 2;
    let on_chain = scratch.epoch - 1;
    let done = scratch.epoch;
    for start in 0..n {
        if scratch.mark[start] == done || scratch.mark[start] == on_chain {
            continue;
        }
        scratch.walk.clear();
        let mut current = start;
        let found = loop {
            if scratch.mark[current] == on_chain {
                break true; // the chain bit its own tail
            }
            if scratch.mark[current] == done || scratch.predecessor[current] == usize::MAX {
                break false;
            }
            scratch.mark[current] = on_chain;
            scratch.mark_pos[current] = scratch.walk.len();
            scratch.walk.push(current);
            current = predecessor_source(scratch, current);
        };
        if found {
            // The chain was collected walking *backwards*: the circuit is the
            // suffix from `current`'s first visit, reversed into traversal
            // order.
            let first = scratch.mark_pos[current];
            let mut positions: Vec<usize> = scratch.walk[first..]
                .iter()
                .map(|&node| scratch.predecessor[node])
                .collect();
            positions.reverse();
            for &node in &scratch.walk {
                scratch.mark[node] = done;
            }
            return Some(positions);
        }
        for &node in &scratch.walk {
            scratch.mark[node] = done;
        }
    }
    None
}

/// Local source node of the predecessor arc of `node`.
fn predecessor_source(scratch: &Scratch, node: usize) -> usize {
    scratch.arc_from[scratch.predecessor[node]] as usize
}

/// Karp's choice: applicable when every arc time is one (cycle mean); other
/// components silently fall back to the parametric method.
fn karp_component(
    graph: &RatioGraph,
    scratch: &mut Scratch,
    n: usize,
    intra: IntraOpts,
) -> Result<ComponentOutcome, McrError> {
    if !scratch.arc_time.iter().all(|time| *time == Rational::ONE) {
        return parametric_component(graph, scratch, n, Rational::ZERO, None, intra);
    }
    let lambda = karp_component_mean(scratch, n)?;
    let Some(lambda) = lambda else {
        return parametric_component(graph, scratch, n, Rational::ZERO, None, intra);
    };
    if !lambda.is_positive() {
        // All circuit times are positive here, so there is no infinite
        // outcome and no positive ratio: the component does not constrain.
        return Ok(ComponentOutcome::NonPositive);
    }
    // One certification pass: converged distances double as potentials for
    // the tight-arc circuit extraction below.
    if let Some(positions) = find_violating_cycle(scratch, n, lambda)? {
        // Defensive: the Karp value should already be the maximum. Restart
        // the parametric iteration from scratch rather than trusting it.
        let _ = positions;
        return parametric_component(graph, scratch, n, Rational::ZERO, None, intra);
    }
    match tight_cycle(scratch, n, lambda)? {
        Some(positions) => Ok(ComponentOutcome::Finite {
            ratio: lambda,
            cycle: materialize_cycle(graph, scratch, &positions)?,
        }),
        None => parametric_component(graph, scratch, n, Rational::ZERO, None, intra),
    }
}

/// Maximum cycle mean of the component view (all arc times are one), using
/// the shared rolling-row Karp recurrence (`O(n)` memory, two passes).
fn karp_component_mean(scratch: &Scratch, n: usize) -> Result<Option<Rational>, McrError> {
    let arcs: Vec<(usize, usize, Rational)> = (0..scratch.arc_len())
        .map(|position| {
            (
                scratch.arc_from[position] as usize,
                scratch.arc_to[position] as usize,
                scratch.arc_cost[position],
            )
        })
        .collect();
    crate::karp::rolling_cycle_mean(n, &arcs)
}

/// After a converged [`find_violating_cycle`] pass at the exact maximum `λ`,
/// extracts a circuit among the arcs that are tight in the first distance
/// component; every such circuit has ratio exactly `λ` when all arc times
/// are positive (which [`karp_component`] guarantees).
fn tight_cycle(
    scratch: &mut Scratch,
    n: usize,
    lambda: Rational,
) -> Result<Option<Vec<usize>>, McrError> {
    // Iterative DFS over tight arcs with stamped colors. Each stack frame is
    // `(node, cursor, entry_arc)` where `entry_arc` is the tight arc through
    // which the frame was entered (`usize::MAX` for the root).
    scratch.epoch += 2;
    let on_stack = scratch.epoch - 1;
    let done = scratch.epoch;
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if scratch.mark[root] == done {
            continue;
        }
        scratch.mark[root] = on_stack;
        stack.clear();
        stack.push((root, scratch.first[root], usize::MAX));
        'dfs: while let Some(&mut (node, ref mut cursor, _)) = stack.last_mut() {
            while *cursor < scratch.first[node + 1] {
                let position = *cursor;
                *cursor += 1;
                let to = scratch.arc_to[position] as usize;
                if scratch.mark[to] == done {
                    continue;
                }
                let reduced = scratch.arc_cost[position]
                    .checked_sub(&lambda.checked_mul(&scratch.arc_time[position])?)?;
                if scratch.distance[to].0 != scratch.distance[node].0.checked_add(&reduced)? {
                    continue; // not tight
                }
                if scratch.mark[to] == on_stack {
                    // Tight circuit: entry arcs of the frames after `to`,
                    // plus the closing arc.
                    let from_frame = stack
                        .iter()
                        .position(|&(frame, _, _)| frame == to)
                        .expect("on-stack node has a frame");
                    let mut positions: Vec<usize> = stack[from_frame + 1..]
                        .iter()
                        .map(|&(_, _, entry)| entry)
                        .collect();
                    positions.push(position);
                    return Ok(Some(positions));
                }
                scratch.mark[to] = on_stack;
                stack.push((to, scratch.first[to], position));
                continue 'dfs;
            }
            scratch.mark[node] = done;
            stack.pop();
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    fn all_choices() -> [SolverChoice; 4] {
        [
            SolverChoice::Auto,
            SolverChoice::Parametric,
            SolverChoice::Howard,
            SolverChoice::Karp,
        ]
    }

    #[test]
    fn single_self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_arc(g.node(0), g.node(0), int(7), int(2));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Finite { ratio, cycle } => {
                    assert_eq!(ratio, Rational::new(7, 2).unwrap(), "{choice:?}");
                    assert_eq!(cycle.len(), 1);
                    assert_eq!(cycle.ratio().unwrap(), ratio);
                    assert!(!cycle.is_empty());
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn picks_the_larger_of_two_cycles() {
        let mut g = RatioGraph::new(4);
        // Cycle 1: 0 -> 1 -> 0 with ratio (2+2)/(1+1) = 2.
        g.add_arc(g.node(0), g.node(1), int(2), int(1));
        g.add_arc(g.node(1), g.node(0), int(2), int(1));
        // Cycle 2: 2 -> 3 -> 2 with ratio (9+1)/(1+1) = 5.
        g.add_arc(g.node(2), g.node(3), int(9), int(1));
        g.add_arc(g.node(3), g.node(2), int(1), int(1));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Finite { ratio, cycle } => {
                    assert_eq!(ratio, int(5), "{choice:?}");
                    assert_eq!(cycle.len(), 2);
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn acyclic_graph() {
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(2), int(1), int(1));
        for choice in all_choices() {
            assert_eq!(
                maximum_cycle_ratio_with(&g, choice).unwrap(),
                CycleRatioOutcome::Acyclic
            );
        }
    }

    #[test]
    fn zero_cost_cycles_are_non_positive() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(0), int(1));
        g.add_arc(g.node(1), g.node(0), int(0), int(1));
        for choice in all_choices() {
            assert_eq!(
                maximum_cycle_ratio_with(&g, choice).unwrap(),
                CycleRatioOutcome::NonPositive
            );
        }
    }

    #[test]
    fn negative_time_cycle_is_infinite() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(0), int(1), int(-2));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Infinite { cycle } => {
                    assert!(cycle.time <= Rational::ZERO);
                    assert!(cycle.cost.is_positive());
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn zero_time_positive_cost_cycle_is_infinite() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(3));
        g.add_arc(g.node(1), g.node(0), int(1), int(-3));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Infinite { cycle } => assert!(cycle.time.is_zero()),
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn negative_time_arcs_are_fine_when_cycles_stay_positive() {
        // Arc with negative time inside a cycle whose total time is positive.
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(-1));
        g.add_arc(g.node(1), g.node(2), int(1), int(3));
        g.add_arc(g.node(2), g.node(0), int(1), int(2));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Finite { ratio, cycle } => {
                    assert_eq!(ratio, Rational::new(3, 4).unwrap(), "{choice:?}");
                    assert_eq!(cycle.len(), 3);
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn nested_cycles_share_nodes() {
        // Two circuits through node 0: 0->1->0 (ratio 2) and 0->2->0 (ratio 4).
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(0), int(3), int(1));
        g.add_arc(g.node(0), g.node(2), int(5), int(1));
        g.add_arc(g.node(2), g.node(0), int(3), int(1));
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Finite { ratio, cycle } => {
                    assert_eq!(ratio, int(4), "{choice:?}");
                    // The critical circuit must be 0 -> 2 -> 0.
                    assert!(cycle.nodes.contains(&g.node(2)));
                    assert!(!cycle.nodes.contains(&g.node(1)));
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn fractional_ratios_are_exact() {
        let mut g = RatioGraph::new(2);
        g.add_arc(
            g.node(0),
            g.node(1),
            Rational::new(1, 3).unwrap(),
            Rational::new(1, 7).unwrap(),
        );
        g.add_arc(
            g.node(1),
            g.node(0),
            Rational::new(1, 5).unwrap(),
            Rational::new(1, 11).unwrap(),
        );
        let expected = (Rational::new(1, 3).unwrap() + Rational::new(1, 5).unwrap())
            .unwrap()
            .checked_div(&(Rational::new(1, 7).unwrap() + Rational::new(1, 11).unwrap()).unwrap())
            .unwrap();
        for choice in all_choices() {
            match maximum_cycle_ratio_with(&g, choice).unwrap() {
                CycleRatioOutcome::Finite { ratio, .. } => {
                    assert_eq!(ratio, expected, "{choice:?}");
                }
                other => panic!("unexpected {other:?} for {choice:?}"),
            }
        }
    }

    #[test]
    fn parallel_solve_is_byte_identical_to_sequential() {
        // Many independent cyclic components with distinct ratios, plus
        // acyclic filler, solved at several thread counts: outcomes must be
        // identical (including which critical circuit is reported).
        let mut state = 0xBEEFu64 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let rings = 2 + (trial % 5) as usize;
            let ring_len = 1 + (next() % 5) as usize;
            let n = rings * ring_len + 3;
            let mut g = RatioGraph::new(n);
            for ring in 0..rings {
                let base = ring * ring_len;
                for i in 0..ring_len {
                    g.add_arc(
                        g.node(base + i),
                        g.node(base + (i + 1) % ring_len),
                        int(-2 + (next() % 9) as i128),
                        Rational::new(1 + (next() % 5) as i128, 1 + (next() % 3) as i128).unwrap(),
                    );
                }
            }
            // Acyclic tail.
            g.add_arc(g.node(n - 3), g.node(n - 2), int(5), int(1));
            g.add_arc(g.node(n - 2), g.node(n - 1), int(5), int(1));
            for choice in all_choices() {
                let sequential = Solver::new(choice).solve(&g).unwrap();
                for threads in [2usize, 4, 8] {
                    let parallel = Solver::new(choice).with_threads(threads).solve(&g).unwrap();
                    assert_eq!(sequential, parallel, "{choice:?} x{threads} trial {trial}");
                }
            }
        }
    }

    #[test]
    fn threads_knob_roundtrips() {
        let mut solver = Solver::new(SolverChoice::Auto).with_threads(4);
        assert_eq!(solver.threads(), 4);
        solver.set_threads(0);
        assert_eq!(solver.threads(), 1);
    }

    #[test]
    fn integer_kernel_toggle_matches_scalar_path() {
        for seed in 0..40u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let n = 1 + (next() % 8) as usize;
            let mut g = RatioGraph::new(n);
            for _ in 0..(2 + next() % 20) {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                g.add_arc(
                    g.node(a),
                    g.node(b),
                    Rational::new(-3 + (next() % 12) as i128, 1 + (next() % 4) as i128).unwrap(),
                    Rational::new(-2 + (next() % 8) as i128, 1 + (next() % 3) as i128).unwrap(),
                );
            }
            let integer = Solver::new(SolverChoice::Howard).solve(&g).unwrap();
            let scalar = Solver::new(SolverChoice::Howard)
                .with_integer_kernel(false)
                .solve(&g)
                .unwrap();
            assert_eq!(integer, scalar, "seed {seed}");
        }
    }

    #[test]
    fn solver_is_reusable_across_graphs() {
        let mut solver = Solver::new(SolverChoice::Auto);
        assert_eq!(solver.choice(), SolverChoice::Auto);
        for size in [2usize, 5, 3] {
            let mut g = RatioGraph::new(size);
            for i in 0..size {
                g.add_arc(g.node(i), g.node((i + 1) % size), int(2), int(1));
            }
            match solver.solve(&g).unwrap() {
                CycleRatioOutcome::Finite { ratio, cycle } => {
                    assert_eq!(ratio, int(2));
                    assert_eq!(cycle.len(), size);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    /// A ratio-rich dense multigraph that drives the parametric iteration
    /// through many strictly increasing λ values (the empirical worst case
    /// of a 20k-seed random search). The old implementation capped the
    /// iteration count with the heuristic `16·max(n,4) + m` and returned a
    /// spurious `IterationLimit` error if a graph visited more distinct
    /// simple-circuit ratios than that guess; the loop now relies on the
    /// sound bound instead — λ strictly increases over the finite set of
    /// simple-circuit ratios — and cannot fail on a valid graph.
    #[test]
    fn ratio_rich_multigraphs_terminate_and_agree() {
        // Deterministic xorshift so the graph is reproducible.
        let mut state: u64 = 11653u64.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 2 + (next() % 4) as usize;
        let m = 60 + (next() % 240) as usize;
        let mut g = RatioGraph::new(n);
        for _ in 0..m {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            let cost_num = -40 + (next() % 441) as i128;
            let cost_den = 1 + (next() % 6) as i128;
            let time_num = 1 + (next() % 48) as i128;
            let time_den = 1 + (next() % 8) as i128;
            g.add_arc(
                g.node(a),
                g.node(b),
                Rational::new(cost_num, cost_den).unwrap(),
                Rational::new(time_num, time_den).unwrap(),
            );
        }
        let parametric = maximum_cycle_ratio(&g).unwrap();
        let ratio = parametric.ratio().expect("dense multigraph has a cycle");
        assert!(ratio.is_positive());
        for choice in [SolverChoice::Howard, SolverChoice::Auto, SolverChoice::Karp] {
            assert_eq!(
                maximum_cycle_ratio_with(&g, choice).unwrap().ratio(),
                Some(ratio),
                "{choice:?}"
            );
        }
    }
}
