//! Maximum cost-to-time ratio solver.
//!
//! Solves the Maximum Cost-to-time Ratio Problem (MCRP) of Dasdan, Irani and
//! Gupta (reference [5] of the paper): given a directed graph whose arcs carry
//! a cost `L(e)` and a time `H(e)`, compute
//! `λ = max_{c ∈ C(G)} ΣL(c) / ΣH(c)` together with a critical circuit.
//!
//! The solver is an exact parametric method: starting from `λ = 0` it
//! repeatedly searches, with a Bellman–Ford longest-walk pass over
//! lexicographic weights `(L(e) − λ·H(e), −H(e))`, for a circuit whose reduced
//! weight is positive. Every circuit found strictly increases `λ` (or proves
//! the instance infeasible when its total time is not positive), so the
//! iteration terminates on the exact maximum ratio over the finite set of
//! simple circuits. All arithmetic is exact rational arithmetic.

use std::fmt;

use csdf::{Rational, RationalError};

use crate::graph::{ArcId, NodeId, RatioGraph};
use crate::scc::SccDecomposition;

/// Errors raised by the MCRP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McrError {
    /// Exact rational arithmetic overflowed.
    Rational(RationalError),
    /// The solver exceeded its iteration budget (defensive bound; should not
    /// happen on well-formed inputs).
    IterationLimit,
}

impl fmt::Display for McrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McrError::Rational(err) => write!(f, "{err}"),
            McrError::IterationLimit => write!(f, "cycle ratio iteration limit exceeded"),
        }
    }
}

impl std::error::Error for McrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McrError::Rational(err) => Some(err),
            McrError::IterationLimit => None,
        }
    }
}

impl From<RationalError> for McrError {
    fn from(err: RationalError) -> Self {
        McrError::Rational(err)
    }
}

/// A circuit of the ratio graph together with its accumulated cost and time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Arcs of the circuit, in traversal order.
    pub arcs: Vec<ArcId>,
    /// Nodes of the circuit, in traversal order (`nodes[i]` is the source of
    /// `arcs[i]`).
    pub nodes: Vec<NodeId>,
    /// Total cost `ΣL(c)`.
    pub cost: Rational,
    /// Total time `ΣH(c)`.
    pub time: Rational,
}

impl CriticalCycle {
    /// The cost-to-time ratio of the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the total time is zero.
    pub fn ratio(&self) -> Result<Rational, RationalError> {
        self.cost.checked_div(&self.time)
    }

    /// Number of arcs in the circuit.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Returns `true` for an empty circuit (never produced by the solver).
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }
}

/// Outcome of [`maximum_cycle_ratio`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleRatioOutcome {
    /// The graph has no circuit at all.
    Acyclic,
    /// Circuits exist but none has a positive ratio: the ratio problem does
    /// not constrain the period (all circuit costs are zero).
    NonPositive,
    /// The maximum ratio is finite and positive; `cycle` is a critical
    /// circuit attaining it.
    Finite {
        /// The maximum cost-to-time ratio `λ`.
        ratio: Rational,
        /// A circuit attaining the maximum.
        cycle: CriticalCycle,
    },
    /// A circuit with positive cost and non-positive time exists: the ratio is
    /// unbounded (for throughput evaluation this means no periodic schedule
    /// exists for the given periodicity vector).
    Infinite {
        /// The offending circuit.
        cycle: CriticalCycle,
    },
}

impl CycleRatioOutcome {
    /// The finite maximum ratio, if any.
    pub fn ratio(&self) -> Option<Rational> {
        match self {
            CycleRatioOutcome::Finite { ratio, .. } => Some(*ratio),
            _ => None,
        }
    }

    /// The critical circuit, if the outcome carries one.
    pub fn cycle(&self) -> Option<&CriticalCycle> {
        match self {
            CycleRatioOutcome::Finite { cycle, .. } | CycleRatioOutcome::Infinite { cycle } => {
                Some(cycle)
            }
            _ => None,
        }
    }
}

/// Computes the maximum cost-to-time ratio of `graph` and a critical circuit.
///
/// # Errors
///
/// Returns [`McrError::Rational`] if the exact arithmetic overflows `i128`.
///
/// # Examples
///
/// ```
/// use mcr::{RatioGraph, maximum_cycle_ratio, CycleRatioOutcome};
/// use csdf::Rational;
///
/// // Two circuits: ratio 3/1 and ratio 5/4; the maximum is 3.
/// let mut graph = RatioGraph::new(3);
/// let (a, b, c) = (graph.node(0), graph.node(1), graph.node(2));
/// graph.add_arc(a, a, Rational::from_integer(3), Rational::from_integer(1));
/// graph.add_arc(b, c, Rational::from_integer(2), Rational::from_integer(3));
/// graph.add_arc(c, b, Rational::from_integer(3), Rational::from_integer(1));
/// match maximum_cycle_ratio(&graph)? {
///     CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, Rational::from_integer(3)),
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), mcr::McrError>(())
/// ```
pub fn maximum_cycle_ratio(graph: &RatioGraph) -> Result<CycleRatioOutcome, McrError> {
    let scc = SccDecomposition::compute(graph);
    let mut best: Option<(Rational, CriticalCycle)> = None;
    let mut saw_cycle = false;

    for component_index in 0..scc.component_count() {
        if !scc.is_cyclic_component(graph, component_index) {
            continue;
        }
        saw_cycle = true;
        let members = scc.component(component_index);
        match component_max_ratio(graph, members)? {
            ComponentOutcome::NonPositive => {}
            ComponentOutcome::Finite { ratio, cycle } => {
                if best.as_ref().map(|(r, _)| ratio > *r).unwrap_or(true) {
                    best = Some((ratio, cycle));
                }
            }
            ComponentOutcome::Infinite { cycle } => {
                return Ok(CycleRatioOutcome::Infinite { cycle });
            }
        }
    }

    Ok(match best {
        Some((ratio, cycle)) => CycleRatioOutcome::Finite { ratio, cycle },
        None if saw_cycle => CycleRatioOutcome::NonPositive,
        None => CycleRatioOutcome::Acyclic,
    })
}

enum ComponentOutcome {
    NonPositive,
    Finite {
        ratio: Rational,
        cycle: CriticalCycle,
    },
    Infinite {
        cycle: CriticalCycle,
    },
}

/// Parametric iteration restricted to one strongly connected component.
fn component_max_ratio(
    graph: &RatioGraph,
    members: &[NodeId],
) -> Result<ComponentOutcome, McrError> {
    // Dense renumbering of the component's nodes.
    let mut local_of = vec![usize::MAX; graph.node_count()];
    for (local, node) in members.iter().enumerate() {
        local_of[node.index()] = local;
    }
    let arcs: Vec<ArcId> = members
        .iter()
        .flat_map(|&node| graph.outgoing(node).iter().copied())
        .filter(|&arc| local_of[graph.arc(arc).to.index()] != usize::MAX)
        .collect();

    let mut lambda = Rational::ZERO;
    let mut best: Option<CriticalCycle> = None;
    // Defensive bound: each round strictly increases lambda towards the
    // maximum over simple circuits; the number of rounds observed in practice
    // is tiny, but protect against pathological inputs anyway.
    let iteration_limit = 16 * members.len().max(4) + arcs.len();

    for _ in 0..iteration_limit {
        match find_violating_cycle(graph, members, &local_of, &arcs, lambda)? {
            None => {
                return Ok(match best {
                    Some(cycle) => ComponentOutcome::Finite {
                        ratio: lambda,
                        cycle,
                    },
                    None => ComponentOutcome::NonPositive,
                });
            }
            Some(cycle) => {
                if !cycle.time.is_positive() {
                    return Ok(ComponentOutcome::Infinite { cycle });
                }
                lambda = cycle.cost.checked_div(&cycle.time)?;
                best = Some(cycle);
            }
        }
    }
    Err(McrError::IterationLimit)
}

/// Searches the component for a circuit whose reduced weight
/// `(ΣL − λΣH, −ΣH)` is lexicographically positive. Returns `None` when no
/// such circuit exists (λ is an upper bound of all finite circuit ratios).
fn find_violating_cycle(
    graph: &RatioGraph,
    members: &[NodeId],
    local_of: &[usize],
    arcs: &[ArcId],
    lambda: Rational,
) -> Result<Option<CriticalCycle>, McrError> {
    let n = members.len();
    // Reduced lexicographic arc weights, grouped by source node so that each
    // round only relaxes arcs leaving nodes improved in the previous round
    // (level-synchronous Bellman–Ford with an active set).
    let mut weights: Vec<(Rational, Rational)> = Vec::with_capacity(arcs.len());
    let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (position, &arc_id) in arcs.iter().enumerate() {
        let arc = graph.arc(arc_id);
        let reduced = arc.cost.checked_sub(&lambda.checked_mul(&arc.time)?)?;
        let negative_time = arc.time.checked_neg()?;
        weights.push((reduced, negative_time));
        outgoing[local_of[arc.from.index()]].push(position);
    }

    let mut distance: Vec<(Rational, Rational)> = vec![(Rational::ZERO, Rational::ZERO); n];
    let mut predecessor: Vec<Option<usize>> = vec![None; n]; // index into `arcs`
    let mut active: Vec<usize> = (0..n).collect();
    let mut in_next = vec![false; n];

    // After n rounds any further improvement proves a positive circuit; the
    // extra rounds (up to 4n in total) only serve the defensive fallback in
    // case a predecessor chain does not expose the circuit immediately.
    for round in 0..=4 * n.max(1) {
        let mut next_active: Vec<usize> = Vec::new();
        for &node in &active {
            for &position in &outgoing[node] {
                let arc = graph.arc(arcs[position]);
                let to = local_of[arc.to.index()];
                let candidate = (
                    distance[node].0.checked_add(&weights[position].0)?,
                    distance[node].1.checked_add(&weights[position].1)?,
                );
                if lex_greater(&candidate, &distance[to]) {
                    distance[to] = candidate;
                    predecessor[to] = Some(position);
                    if !in_next[to] {
                        in_next[to] = true;
                        next_active.push(to);
                    }
                }
            }
        }
        if next_active.is_empty() {
            return Ok(None);
        }
        if round >= n {
            // A walk longer than n arcs still improves: a positive circuit
            // exists. Extract it from the predecessor graph.
            for &start in &next_active {
                if let Some(cycle) =
                    extract_cycle(graph, members, local_of, arcs, &predecessor, start)
                {
                    return Ok(Some(cycle));
                }
            }
            // Extremely unlikely: the circuit is not yet visible from the
            // improved nodes' predecessor chains; keep relaxing.
        }
        for &node in &next_active {
            in_next[node] = false;
        }
        active = next_active;
    }
    Err(McrError::IterationLimit)
}

fn lex_greater(a: &(Rational, Rational), b: &(Rational, Rational)) -> bool {
    match a.0.cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 > b.1,
    }
}

fn extract_cycle(
    graph: &RatioGraph,
    members: &[NodeId],
    local_of: &[usize],
    arcs: &[ArcId],
    predecessor: &[Option<usize>],
    start: usize,
) -> Option<CriticalCycle> {
    // Walk the predecessor chain from `start` until a node repeats (a circuit
    // of the predecessor graph) or the chain ends (no circuit visible from
    // this node yet).
    let n = members.len();
    let mut visit_order = vec![usize::MAX; n];
    let mut chain = Vec::new();
    let mut current = start;
    let cycle_entry = loop {
        if visit_order[current] != usize::MAX {
            break current;
        }
        visit_order[current] = chain.len();
        let arc_position = predecessor[current]?;
        chain.push(arcs[arc_position]);
        current = local_of[graph.arc(arcs[arc_position]).from.index()];
    };
    // The chain was collected walking *backwards*: chain[i] is the arc whose
    // head is the i-th visited node. The circuit consists of the arcs visited
    // from the first occurrence of `cycle_entry` onwards.
    let first_index = visit_order[cycle_entry];
    let mut cycle_arcs: Vec<ArcId> = chain[first_index..].to_vec();
    cycle_arcs.reverse();
    let nodes: Vec<NodeId> = cycle_arcs.iter().map(|&arc| graph.arc(arc).from).collect();
    let (cost, time) = graph.path_weight(&cycle_arcs).ok()?;
    Some(CriticalCycle {
        arcs: cycle_arcs,
        nodes,
        cost,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    #[test]
    fn single_self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_arc(g.node(0), g.node(0), int(7), int(2));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, Rational::new(7, 2).unwrap());
                assert_eq!(cycle.len(), 1);
                assert_eq!(cycle.ratio().unwrap(), ratio);
                assert!(!cycle.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn picks_the_larger_of_two_cycles() {
        let mut g = RatioGraph::new(4);
        // Cycle 1: 0 -> 1 -> 0 with ratio (2+2)/(1+1) = 2.
        g.add_arc(g.node(0), g.node(1), int(2), int(1));
        g.add_arc(g.node(1), g.node(0), int(2), int(1));
        // Cycle 2: 2 -> 3 -> 2 with ratio (9+1)/(1+1) = 5.
        g.add_arc(g.node(2), g.node(3), int(9), int(1));
        g.add_arc(g.node(3), g.node(2), int(1), int(1));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, int(5));
                assert_eq!(cycle.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn acyclic_graph() {
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(2), int(1), int(1));
        assert_eq!(maximum_cycle_ratio(&g).unwrap(), CycleRatioOutcome::Acyclic);
    }

    #[test]
    fn zero_cost_cycles_are_non_positive() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(0), int(1));
        g.add_arc(g.node(1), g.node(0), int(0), int(1));
        assert_eq!(
            maximum_cycle_ratio(&g).unwrap(),
            CycleRatioOutcome::NonPositive
        );
    }

    #[test]
    fn negative_time_cycle_is_infinite() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(0), int(1), int(-2));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Infinite { cycle } => {
                assert!(cycle.time <= Rational::ZERO);
                assert!(cycle.cost.is_positive());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_time_positive_cost_cycle_is_infinite() {
        let mut g = RatioGraph::new(2);
        g.add_arc(g.node(0), g.node(1), int(1), int(3));
        g.add_arc(g.node(1), g.node(0), int(1), int(-3));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Infinite { cycle } => assert!(cycle.time.is_zero()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_time_arcs_are_fine_when_cycles_stay_positive() {
        // Arc with negative time inside a cycle whose total time is positive.
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(-1));
        g.add_arc(g.node(1), g.node(2), int(1), int(3));
        g.add_arc(g.node(2), g.node(0), int(1), int(2));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, Rational::new(3, 4).unwrap());
                assert_eq!(cycle.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_cycles_share_nodes() {
        // Two circuits through node 0: 0->1->0 (ratio 2) and 0->2->0 (ratio 4).
        let mut g = RatioGraph::new(3);
        g.add_arc(g.node(0), g.node(1), int(1), int(1));
        g.add_arc(g.node(1), g.node(0), int(3), int(1));
        g.add_arc(g.node(0), g.node(2), int(5), int(1));
        g.add_arc(g.node(2), g.node(0), int(3), int(1));
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, int(4));
                // The critical circuit must be 0 -> 2 -> 0.
                assert!(cycle.nodes.contains(&g.node(2)));
                assert!(!cycle.nodes.contains(&g.node(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fractional_ratios_are_exact() {
        let mut g = RatioGraph::new(2);
        g.add_arc(
            g.node(0),
            g.node(1),
            Rational::new(1, 3).unwrap(),
            Rational::new(1, 7).unwrap(),
        );
        g.add_arc(
            g.node(1),
            g.node(0),
            Rational::new(1, 5).unwrap(),
            Rational::new(1, 11).unwrap(),
        );
        let expected = (Rational::new(1, 3).unwrap() + Rational::new(1, 5).unwrap())
            .unwrap()
            .checked_div(&(Rational::new(1, 7).unwrap() + Rational::new(1, 11).unwrap()).unwrap())
            .unwrap();
        match maximum_cycle_ratio(&g).unwrap() {
            CycleRatioOutcome::Finite { ratio, .. } => assert_eq!(ratio, expected),
            other => panic!("unexpected {other:?}"),
        }
    }
}
