//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that a caller hands to a
//! solver (and, higher up, to an evaluation pipeline) so the hot loops can
//! bail out of a solve that the caller no longer wants: an explicit
//! [`CancelToken::cancel`] call or an elapsed deadline. The checks are
//! *cooperative* — the serial solver polls [`CancelToken::is_cancelled`]
//! once per policy-iteration / Bellman–Ford round, and the chunked
//! intra-component kernels poll per chunk and every few hundred nodes
//! within a chunk (so on a 100k-task single-SCC graph, whose rounds take
//! hundreds of milliseconds, a deadline still lands promptly). Cancellation
//! is never a partial write: every data structure stays reusable after a
//! cancelled solve.
//!
//! The default token ([`CancelToken::default`]) holds no shared state and
//! never cancels; polling it is a branch on a `None`, so code paths that do
//! not use cancellation pay essentially nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle polled by the solver hot loops.
///
/// # Examples
///
/// ```
/// use mcr::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// // The default token never cancels.
/// assert!(!CancelToken::default().is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// Creates a token that cancels only on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// Creates a token that auto-cancels once `budget` has elapsed (measured
    /// from this call); [`CancelToken::cancel`] still works earlier.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Whether this is the detached default token (no shared state, never
    /// cancels). Callers use this to substitute their own fallback budget
    /// when no real deadline was installed.
    pub fn is_detached(&self) -> bool {
        self.inner.is_none()
    }

    /// Requests cancellation; every clone of this token observes it. A no-op
    /// on the default token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    /// Always `false` for the default token.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                if inner.cancelled.load(Ordering::Relaxed) {
                    return true;
                }
                match inner.deadline {
                    Some(deadline) if Instant::now() >= deadline => {
                        // Latch the flag so later polls skip the clock read.
                        inner.cancelled.store(true, Ordering::Relaxed);
                        true
                    }
                    _ => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_cancelled_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_cancel() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn default_token_ignores_cancel() {
        let token = CancelToken::default();
        token.cancel();
        assert!(!token.is_cancelled());
    }
}
